#include "util/backoff.h"

#include <algorithm>

namespace ccms::util {

Backoff::Backoff(BackoffConfig config) : config_(config), rng_(config.seed) {
  config_.base_ms = std::max<std::int64_t>(1, config_.base_ms);
  config_.cap_ms = std::max(config_.base_ms, config_.cap_ms);
  config_.multiplier = std::max(1.0, config_.multiplier);
}

std::int64_t Backoff::next_ms() {
  std::int64_t delay = 0;
  if (attempts_ == 0) {
    delay = config_.base_ms;
  } else if (config_.jitter) {
    // Decorrelated jitter: uniform in [base, prev * multiplier], capped.
    const auto hi = static_cast<std::int64_t>(
        static_cast<double>(prev_ms_) * config_.multiplier);
    delay = rng_.uniform_int(config_.base_ms,
                             std::max(config_.base_ms, hi));
  } else {
    delay = static_cast<std::int64_t>(static_cast<double>(prev_ms_) *
                                      config_.multiplier);
  }
  delay = std::clamp(delay, config_.base_ms, config_.cap_ms);
  prev_ms_ = delay;
  ++attempts_;
  return delay;
}

void Backoff::reset() {
  prev_ms_ = 0;
  attempts_ = 0;
}

}  // namespace ccms::util
