// Seeded exponential backoff with decorrelated jitter.
//
// Restart/retry loops (the dist supervisor, flaky-feed reconnects) need
// delays that grow exponentially, are capped, and are *jittered* so a fleet
// of restarting workers does not thunder in lockstep. Because every delay is
// drawn from util::Rng seeded by the caller, a schedule is reproducible
// bit-for-bit — tests assert exact delay sequences, and a flight-recorder
// replay of a supervisor run re-draws the same backoff decisions.
//
// Jitter policy is "decorrelated jitter" (Brooker, AWS Architecture Blog
// 2015): each delay is uniform in [base, prev * multiplier], clamped to
// [base, cap]. With jitter off the schedule is the plain exponential
// base * multiplier^attempt, clamped to cap.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace ccms::util {

struct BackoffConfig {
  std::int64_t base_ms = 10;    ///< first delay and jitter floor
  std::int64_t cap_ms = 2000;   ///< delays never exceed this
  double multiplier = 2.0;      ///< exponential growth factor (>= 1)
  bool jitter = true;           ///< decorrelated jitter vs. plain exponential
  std::uint64_t seed = 1;       ///< Rng seed; same seed => same schedule
};

/// One backoff schedule. next_ms() advances it; reset() rewinds to the first
/// delay (the Rng state is *not* rewound: after a reset the jittered draws
/// continue from the stream, but the envelope restarts at base).
class Backoff {
 public:
  explicit Backoff(BackoffConfig config = {});

  /// The next delay in milliseconds, advancing the schedule.
  std::int64_t next_ms();

  /// Rewinds the envelope to the first delay. Attempt count restarts too.
  void reset();

  /// Delays handed out since construction or the last reset().
  [[nodiscard]] int attempts() const { return attempts_; }

  [[nodiscard]] const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  Rng rng_;
  std::int64_t prev_ms_ = 0;
  int attempts_ = 0;
};

}  // namespace ccms::util
