// Minimal append-only JSON serialization, shared by the bench emitters
// (BENCH_*.json) and the invariants harness (harness_summary.json, replay
// bundles). Deliberately tiny — no dependency, no reflection — sufficient
// for flat objects with nested arrays of flat objects.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "util/csv.h"

namespace ccms::util {

/// Append-only JSON object builder. Keys are emitted in call order; values
/// are numbers, strings, bools or raw (pre-serialized) JSON.
class JsonObject {
 public:
  JsonObject& add(std::string_view key, double value) {
    std::ostringstream os;
    os.precision(15);  // round-trippable for any value we emit
    os << value;
    return raw(key, os.str());
  }
  JsonObject& add(std::string_view key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  // std::size_t is covered by the std::uint64_t overload on LP64.
  JsonObject& add(std::string_view key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  // Without this overload a string literal would convert to bool.
  JsonObject& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObject& add(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }
  /// Nested object / array: pass pre-serialized JSON.
  JsonObject& raw(std::string_view key, std::string_view json) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += json;
    return *this;
  }

  [[nodiscard]] std::string dump() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Serializes a sequence of pre-serialized JSON values as an array.
class JsonArray {
 public:
  JsonArray& push(std::string_view json) {
    if (!body_.empty()) body_ += ", ";
    body_ += json;
    return *this;
  }
  [[nodiscard]] std::string dump() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

/// Writes `json` (plus a trailing newline) to `path`, truncating. Throws
/// util::CsvError on I/O failure.
inline void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw CsvError("cannot open " + path + " for writing");
  out << json << "\n";
  out.close();
  if (!out) throw CsvError("write failed: " + path);
}

}  // namespace ccms::util
