// ASCII maps of the synthetic service area — one glyph per base station.
// Used by examples and benches to show the geography behind the numbers
// (where the busy radios sit, where the saturated core is).
#pragma once

#include <string>

#include "net/load.h"
#include "net/topology.h"

namespace ccms::net {

/// Geography-class map: 'D' downtown, 's' suburban, '+' highway corridor,
/// '.' rural.
[[nodiscard]] std::string render_geo_map(const Topology& topology);

/// Load map: each station shaded by the mean weekly utilisation of its
/// cells, ' ' (idle) .. '@' (saturated).
[[nodiscard]] std::string render_load_map(const Topology& topology,
                                          const BackgroundLoad& background);

}  // namespace ccms::net
