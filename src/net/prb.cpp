#include "net/prb.h"

#include <algorithm>

#include "util/time.h"

namespace ccms::net {

namespace {

constexpr double kBinSeconds =
    static_cast<double>(time::kSecondsPerBin15);

double background_at(std::span<const double> background, int bin) {
  if (background.empty()) return 0.0;
  const auto n = static_cast<int>(background.size());
  int b = bin % n;
  if (b < 0) b += n;
  return std::clamp(background[static_cast<std::size_t>(b)], 0.0, 1.0);
}

}  // namespace

PrbDayResult simulate_day(std::span<const double> background,
                          std::span<const GreedyFlow> flows,
                          CarrierId carrier) {
  PrbDayResult result;
  const int bins = background.empty()
                       ? time::kBins15PerDay
                       : static_cast<int>(background.size());
  result.utilization.resize(static_cast<std::size_t>(bins));
  result.flow_throughput_mbps.assign(static_cast<std::size_t>(bins), 0.0);
  const double peak = peak_throughput_mbps(carrier);

  for (int bin = 0; bin < bins; ++bin) {
    const double bg = background_at(background, bin);
    // Collect the demand of flows active in this bin (wrapping).
    double total_demand = 0;
    for (const GreedyFlow& f : flows) {
      for (int k = 0; k < f.duration_bins; ++k) {
        if ((f.start_bin + k) % bins == bin) {
          total_demand += std::clamp(f.demand, 0.0, 1.0);
          break;
        }
      }
    }
    const double free = std::max(0.0, 1.0 - bg);
    const double used_by_flows = free * std::min(1.0, total_demand);
    result.utilization[static_cast<std::size_t>(bin)] = bg + used_by_flows;
    const double tput = used_by_flows * peak;
    result.flow_throughput_mbps[static_cast<std::size_t>(bin)] = tput;
    result.delivered_mb += tput * kBinSeconds / 8.0;  // Mbit/s -> MB
  }
  return result;
}

double download_time_seconds(double megabytes,
                             std::span<const double> background, int start_bin,
                             CarrierId carrier, double demand) {
  if (megabytes <= 0) return 0.0;
  const double peak = peak_throughput_mbps(carrier);
  const double d = std::clamp(demand, 0.0, 1.0);

  double remaining_mb = megabytes;
  double elapsed = 0;
  const int max_bins = 7 * time::kBins15PerDay;
  for (int k = 0; k < max_bins; ++k) {
    const double bg = background_at(background, start_bin + k);
    const double tput_mbps = std::max(0.0, 1.0 - bg) * d * peak;
    const double bin_mb = tput_mbps * kBinSeconds / 8.0;
    if (bin_mb >= remaining_mb) {
      // Fraction of the bin needed to finish.
      elapsed += kBinSeconds * (remaining_mb / bin_mb);
      return elapsed;
    }
    remaining_mb -= bin_mb;
    elapsed += kBinSeconds;
  }
  return -1.0;
}

}  // namespace ccms::net
