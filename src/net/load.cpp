#include "net/load.h"

#include <algorithm>
#include <cmath>

namespace ccms::net {

namespace {

// Hourly shape templates, one multiplier per hour of day. Values are
// relative to the class base; the "network peak" (14-24 local, per Fig 4)
// is the high plateau for every class, with class-specific morning bumps.
constexpr std::array<std::array<double, 24>, kGeoClassCount> kHourShape = {{
    // downtown: office + evening entertainment; hot 10:00-23:00
    {{0.35, 0.28, 0.24, 0.22, 0.24, 0.32, 0.48, 0.68, 0.85, 0.95, 1.02, 1.08,
      1.10, 1.10, 1.15, 1.18, 1.22, 1.28, 1.30, 1.28, 1.24, 1.18, 0.95, 0.60}},
    // suburban: residential; evening-heavy
    {{0.38, 0.30, 0.26, 0.25, 0.27, 0.35, 0.55, 0.75, 0.80, 0.78, 0.80, 0.85,
      0.88, 0.88, 0.92, 1.00, 1.10, 1.20, 1.28, 1.30, 1.28, 1.20, 0.95, 0.60}},
    // highway: commute bumps morning and evening
    {{0.30, 0.25, 0.22, 0.22, 0.28, 0.45, 0.80, 1.10, 1.05, 0.85, 0.80, 0.82,
      0.85, 0.85, 0.90, 1.00, 1.18, 1.30, 1.22, 1.05, 0.95, 0.85, 0.65, 0.45}},
    // rural: flat and low
    {{0.40, 0.35, 0.32, 0.32, 0.35, 0.45, 0.60, 0.72, 0.78, 0.80, 0.82, 0.85,
      0.86, 0.86, 0.88, 0.92, 0.98, 1.05, 1.10, 1.08, 1.00, 0.88, 0.70, 0.52}},
}};

// Weekend multiplier per class: downtown offices empty out a bit, suburban
// and rural see slightly more daytime traffic.
constexpr std::array<double, kGeoClassCount> kWeekendFactor = {0.88, 1.05,
                                                               0.90, 1.02};

}  // namespace

double diurnal_multiplier(GeoClass geo, int hour, time::Weekday day) {
  const auto g = static_cast<std::size_t>(geo);
  const double base = kHourShape[g][static_cast<std::size_t>(hour)];
  return time::is_weekend(day) ? base * kWeekendFactor[g] : base;
}

BackgroundLoad::BackgroundLoad(const Topology& topology,
                               const LoadModelConfig& config, util::Rng& rng) {
  const CellTable& cells = topology.cells();
  // Saturated-core geometry: stations within core_radius of the grid centre.
  const auto& tc = topology.config();
  const double cx = (tc.grid_width - 1) / 2.0 * tc.spacing_km;
  const double cy = (tc.grid_height - 1) / 2.0 * tc.spacing_km;
  const double half_diag = std::max(1.0, std::hypot(cx, cy));
  profiles_.resize(cells.size());
  for (const CellInfo& cell : cells.all()) {
    util::Rng cell_rng = rng.split(0xBACC0000ULL + cell.id.value);
    const auto g = static_cast<std::size_t>(cell.geo);

    double scale =
        std::exp(config.cell_scale_sigma * cell_rng.normal());
    // Hot spots are a property of the *site sector* (venue, mall, junction),
    // not of a single carrier: all cells of a hot sector run hot. This is
    // what lets a car whose habitual locations are hot spend nearly all its
    // connected time on busy radios (Fig 7's ~1% tail).
    util::Rng sector_rng =
        rng.split(0x5EC70000ULL +
                  static_cast<std::uint64_t>(cell.station.value) *
                      kSectorsPerStation +
                  cell.sector.value);
    util::Rng station_rng =
        rng.split(0x57A70000ULL + cell.station.value);
    const Position sp = topology.station_position(cell.station);
    const bool in_core =
        std::hypot(sp.x - cx, sp.y - cy) / half_diag <= config.core_radius;
    const bool superhot =
        in_core || station_rng.bernoulli(config.superhot_fraction[g]);
    if (superhot) {
      // Saturated sites do not get a lucky quiet carrier: the congestion is
      // sitewide, so the per-cell scale never drops below nominal.
      scale = std::max(scale, 1.0) * config.superhot_boost[g];
    } else if (sector_rng.bernoulli(config.hot_fraction[g])) {
      scale *= config.hot_boost[g];
    }

    auto& profile = profiles_[cell.id.value];
    profile.resize(time::kBins15PerWeek);
    for (int bin = 0; bin < time::kBins15PerWeek; ++bin) {
      const int day = bin / time::kBins15PerDay;
      const int bin_of_day = bin % time::kBins15PerDay;
      const int hour = bin_of_day / 4;
      const int next_hour = (hour + 1) % 24;
      const double frac = (bin_of_day % 4) / 4.0;
      const auto wd = static_cast<time::Weekday>(day);
      // Linear interpolation between hourly template points keeps the
      // 15-minute curve smooth, as real PRB telemetry is.
      const double m0 = diurnal_multiplier(cell.geo, hour, wd);
      const double m1 = diurnal_multiplier(cell.geo, next_hour, wd);
      double diurnal = m0 + (m1 - m0) * frac;
      // Super-hot sites never cool off during waking hours: venues with
      // around-the-clock demand. Their diurnal floor keeps them above the
      // busy threshold in every bin a car is realistically awake in.
      if (superhot) diurnal = std::max(diurnal, 0.85);
      const double jitter =
          1.0 + config.jitter * (2.0 * cell_rng.uniform() - 1.0);
      const double u = config.base[g] * diurnal * scale * jitter;
      profile[static_cast<std::size_t>(bin)] =
          static_cast<float>(std::clamp(u, 0.0, 1.0));
    }
  }
}

double BackgroundLoad::weekly_mean(CellId cell) const {
  const auto& p = profiles_[cell.value];
  double sum = 0;
  for (const float v : p) sum += v;
  return p.empty() ? 0.0 : sum / static_cast<double>(p.size());
}

}  // namespace ccms::net
