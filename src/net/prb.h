// Physical Resource Block (PRB) saturation model.
//
// Fig 1 of the paper shows that a single device running a long greedy
// download drives a cell's PRB utilisation to ~100% for the duration of the
// test (20:45 UTC + 4 h in the paper's experiment), while the cell's average
// day keeps its diurnal shape. We reproduce that experiment with an elastic-
// flow model: LTE schedulers give a backlogged ("greedy") flow whatever
// PRBs the background traffic leaves idle, so
//
//   U(bin) = min(1, background(bin) + sum_i demand_i * free(bin) / n_active)
//   throughput_i(bin) = share_i(bin) * peak_throughput(carrier)
//
// The same model powers the FOTA campaign planner example: given an update
// size, it answers "how long does this download occupy the cell, and how
// much utilisation does it add, if started at bin B?".
#pragma once

#include <span>
#include <vector>

#include "net/carrier.h"

namespace ccms::net {

/// One backlogged elastic flow (e.g. a FOTA download) in a cell.
struct GreedyFlow {
  int start_bin = 0;     ///< first 15-minute bin of the day the flow is active
  int duration_bins = 1; ///< number of consecutive bins the flow stays active
  double demand = 1.0;   ///< fraction of the free capacity the flow can absorb
};

/// Result of simulating a day of a cell with greedy flows present.
struct PrbDayResult {
  /// Utilisation per 15-minute bin (96 values) including the flows.
  std::vector<double> utilization;
  /// Aggregate flow throughput per bin in Mbit/s.
  std::vector<double> flow_throughput_mbps;
  /// Total megabytes delivered to all flows over the day.
  double delivered_mb = 0;
};

/// Simulate one day (96 bins) of a cell whose background utilisation is
/// `background` (96 values in [0,1]) with `flows` active. Bins wrap modulo
/// 96, so a flow straddling midnight is handled.
[[nodiscard]] PrbDayResult simulate_day(std::span<const double> background,
                                        std::span<const GreedyFlow> flows,
                                        CarrierId carrier);

/// How many seconds a single greedy download of `megabytes` takes when
/// started at `start_bin`, given the background day profile. Returns a
/// negative value if the download cannot finish within 7 days (capacity
/// permanently saturated).
[[nodiscard]] double download_time_seconds(double megabytes,
                                           std::span<const double> background,
                                           int start_bin, CarrierId carrier,
                                           double demand = 1.0);

}  // namespace ccms::net
