#include "net/cell.h"

namespace ccms::net {

const char* name(GeoClass g) {
  switch (g) {
    case GeoClass::kDowntown:
      return "downtown";
    case GeoClass::kSuburban:
      return "suburban";
    case GeoClass::kHighway:
      return "highway";
    case GeoClass::kRural:
      return "rural";
  }
  return "?";
}

const char* name(HandoverType t) {
  switch (t) {
    case HandoverType::kNone:
      return "none";
    case HandoverType::kInterTechnology:
      return "inter-technology";
    case HandoverType::kInterStation:
      return "inter-station";
    case HandoverType::kInterSector:
      return "inter-sector";
    case HandoverType::kInterCarrier:
      return "inter-carrier";
  }
  return "?";
}

HandoverType classify_handover(const CellInfo& a, const CellInfo& b) {
  if (a.id == b.id) return HandoverType::kNone;
  if (a.technology != b.technology) return HandoverType::kInterTechnology;
  if (a.station != b.station) return HandoverType::kInterStation;
  if (a.sector != b.sector) return HandoverType::kInterSector;
  return HandoverType::kInterCarrier;
}

CellId CellTable::add(StationId station, SectorId sector, CarrierId carrier,
                      GeoClass geo, Technology technology) {
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  cells_.push_back(CellInfo{id, station, sector, carrier, geo, technology});
  if (by_station_.size() <= station.value) {
    by_station_.resize(station.value + 1);
  }
  by_station_[station.value].push_back(id);
  return id;
}

std::span<const CellId> CellTable::cells_of(StationId station) const {
  if (station.value >= by_station_.size()) return {};
  return by_station_[station.value];
}

}  // namespace ccms::net
