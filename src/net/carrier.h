// Radio carrier (frequency band) catalogue.
//
// §4.6: the studied cars connect over five observed carriers C1..C5. The
// paper anonymises the actual bands; we model a plausible US LTE band plan
// with the properties the paper reports:
//   - C1..C4 are usable by effectively the whole car population; C5 is a new
//     band only a negligible sliver of modems supports (0.006% of cars),
//   - C3 and C4 carry ~75% of connected time (C3 51.9%, C4 22.1%),
//   - higher-frequency carriers have wider bandwidth => higher throughput.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/types.h"

namespace ccms::net {

/// Number of carriers in the study.
inline constexpr int kCarrierCount = 5;

/// Radio access technology. 3G appears only residually (§4.5 finds 3G/4G
/// handovers "in negligible numbers").
enum class Technology : std::uint8_t { k3G = 0, k4G = 1 };

/// Static description of one carrier.
struct CarrierSpec {
  CarrierId id;
  const char* name;          ///< "C1".."C5", the paper's anonymised names
  double frequency_mhz;      ///< nominal downlink centre frequency
  double bandwidth_mhz;      ///< channel bandwidth (drives peak throughput)
  Technology technology;     ///< C1 also anchors residual 3G coverage
  /// Probability that a station of each geography class deploys this
  /// carrier, indexed by net::GeoClass (downtown, suburban, highway, rural).
  std::array<double, 4> deployment_by_class;
  /// Relative preference of the car modem when several carriers are
  /// available at a station; calibrated to Table 3's time shares.
  double selection_weight;
  /// Fraction of car modems capable of using this carrier at all.
  double modem_support_fraction;
};

/// The five-carrier catalogue (index = CarrierId::value).
[[nodiscard]] std::span<const CarrierSpec, kCarrierCount> carrier_catalogue();

/// Spec for one carrier id (must be < kCarrierCount).
[[nodiscard]] const CarrierSpec& carrier_spec(CarrierId id);

/// Peak downlink throughput in Mbit/s for a carrier: bandwidth times an
/// assumed average LTE spectral efficiency (~1.6 bit/s/Hz across the cell).
[[nodiscard]] double peak_throughput_mbps(CarrierId id);

}  // namespace ccms::net
