// RRC connection lifecycle model.
//
// §3: "There can be a vast range of connection durations at radio level due
// to the normal timeout of 10 to 12 seconds after no data is left to
// transmit in either direction [Huang et al., MobiSys'12]."
//
// A radio connection (one CDR record) is not the data transfer itself: the
// RRC machine promotes to CONNECTED at the first byte and demotes back to
// IDLE only after the inactivity timer expires. This module converts a
// stream of data-activity intervals into the radio-connection intervals a
// CDR would log: activities closer together than the timeout share one
// connection; the logged duration extends past the last byte by the timeout.
#pragma once

#include <optional>

#include "util/rng.h"
#include "util/time.h"

namespace ccms::net {

/// Inactivity-timer parameters (Huang et al. measured 10-12 s across
/// carriers).
struct RrcConfig {
  double timeout_min_s = 10;
  double timeout_max_s = 12;
};

/// Event-driven RRC machine for one device on one cell.
///
/// Feed data-activity intervals in nondecreasing start order; whenever a new
/// activity arrives after the previous connection has already released, the
/// completed radio-connection interval is returned. Call flush() at the end
/// for the final connection.
class RrcMachine {
 public:
  /// The timeout for each connection is drawn from `rng` (uniform in the
  /// configured range) when the connection opens.
  RrcMachine(const RrcConfig& config, util::Rng& rng);

  /// Registers data activity [start, end). Returns the previous radio
  /// connection if this activity arrives after its release.
  std::optional<time::Interval> on_activity(time::Interval activity);

  /// Closes and returns the open connection, if any.
  std::optional<time::Interval> flush();

  /// True while the radio would currently be CONNECTED at time `t` (i.e.
  /// t is before the pending release of the open connection).
  [[nodiscard]] bool connected_at(time::Seconds t) const;

 private:
  time::Seconds draw_timeout();

  RrcConfig config_;
  util::Rng* rng_;
  bool open_ = false;
  time::Seconds open_start_ = 0;
  time::Seconds release_at_ = 0;  ///< last activity end + timeout
};

}  // namespace ccms::net
