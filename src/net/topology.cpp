#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ccms::net {

namespace {

GeoClass classify(const TopologyConfig& cfg, int ix, int iy) {
  const double cx = (cfg.grid_width - 1) / 2.0;
  const double cy = (cfg.grid_height - 1) / 2.0;
  const double half_diag = std::hypot(cx, cy);
  const double dist = std::hypot(ix - cx, iy - cy);
  const double r = dist / std::max(1.0, half_diag);
  // At least the ring of stations around the centre is downtown, so tiny
  // test grids still have an urban core.
  if (r <= cfg.downtown_radius || dist <= 1.0) return GeoClass::kDowntown;
  // Highway corridors: the central row and central column outside downtown.
  const int mid_x = cfg.grid_width / 2;
  const int mid_y = cfg.grid_height / 2;
  if ((std::abs(ix - mid_x) <= 0 || std::abs(iy - mid_y) <= 0) &&
      r <= cfg.suburban_radius + 0.25) {
    return GeoClass::kHighway;
  }
  if (r <= cfg.suburban_radius) return GeoClass::kSuburban;
  return GeoClass::kRural;
}

}  // namespace

Topology::Topology(const TopologyConfig& config, util::Rng& rng)
    : config_(config) {
  const int w = std::max(1, config_.grid_width);
  const int h = std::max(1, config_.grid_height);
  config_.grid_width = w;
  config_.grid_height = h;
  const auto n_stations = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  geo_.reserve(n_stations);
  deployed_.reserve(n_stations);
  cell_lookup_.assign(n_stations * kSectorsPerStation * kCarrierCount, -1);

  const auto catalogue = carrier_catalogue();
  for (int iy = 0; iy < h; ++iy) {
    for (int ix = 0; ix < w; ++ix) {
      const StationId station{static_cast<std::uint32_t>(geo_.size())};
      const GeoClass geo = classify(config_, ix, iy);
      geo_.push_back(geo);

      std::vector<CarrierId> deployed;
      for (const CarrierSpec& spec : catalogue) {
        const double p =
            spec.deployment_by_class[static_cast<std::size_t>(geo)];
        if (rng.bernoulli(p)) deployed.push_back(spec.id);
      }
      // Every station must carry at least the coverage layer C1.
      if (deployed.empty()) deployed.push_back(CarrierId{0});

      // A small residue of 3G persists on the C2 band at some rural sites;
      // cars touch it rarely, producing the paper's "negligible" count of
      // 3G/4G handovers (§4.5).
      const bool legacy_3g_site =
          geo == GeoClass::kRural && rng.bernoulli(0.25);

      for (int sector = 0; sector < kSectorsPerStation; ++sector) {
        for (const CarrierId carrier : deployed) {
          const Technology tech = (legacy_3g_site && carrier.value == 1)
                                      ? Technology::k3G
                                      : Technology::k4G;
          const CellId cell = cells_.add(
              station, SectorId{static_cast<std::uint8_t>(sector)}, carrier,
              geo, tech);
          const std::size_t key =
              (static_cast<std::size_t>(station.value) * kSectorsPerStation +
               static_cast<std::size_t>(sector)) *
                  kCarrierCount +
              carrier.value;
          cell_lookup_[key] = static_cast<std::int32_t>(cell.value);
        }
      }
      deployed_.push_back(std::move(deployed));
    }
  }
}

Position Topology::station_position(StationId s) const {
  const GridCoord c = station_coord(s);
  return {c.ix * config_.spacing_km, c.iy * config_.spacing_km};
}

GridCoord Topology::station_coord(StationId s) const {
  const int w = config_.grid_width;
  return {static_cast<int>(s.value) % w, static_cast<int>(s.value) / w};
}

StationId Topology::station_at(GridCoord c) const {
  const int ix = std::clamp(c.ix, 0, config_.grid_width - 1);
  const int iy = std::clamp(c.iy, 0, config_.grid_height - 1);
  return StationId{
      static_cast<std::uint32_t>(iy * config_.grid_width + ix)};
}

StationId Topology::nearest_station(Position p) const {
  const int ix = static_cast<int>(std::lround(p.x / config_.spacing_km));
  const int iy = static_cast<int>(std::lround(p.y / config_.spacing_km));
  return station_at({ix, iy});
}

std::optional<CellId> Topology::cell_at(StationId s, SectorId sector,
                                        CarrierId carrier) const {
  if (s.value >= geo_.size() || sector.value >= kSectorsPerStation ||
      carrier.value >= kCarrierCount) {
    return std::nullopt;
  }
  const std::size_t key =
      (static_cast<std::size_t>(s.value) * kSectorsPerStation +
       static_cast<std::size_t>(sector.value)) *
          kCarrierCount +
      carrier.value;
  const std::int32_t v = cell_lookup_[key];
  if (v < 0) return std::nullopt;
  return CellId{static_cast<std::uint32_t>(v)};
}

SectorId Topology::sector_towards(StationId s, Position p) const {
  const Position sp = station_position(s);
  const double angle = std::atan2(p.y - sp.y, p.x - sp.x);  // [-pi, pi]
  // Sector 0 spans [-60, 60) degrees, 1 spans [60, 180), 2 spans [-180, -60).
  constexpr double kThird = 2.0 * std::numbers::pi / 3.0;
  double shifted = angle + kThird / 2.0;
  if (shifted < 0) shifted += 2.0 * std::numbers::pi;
  const int sector = static_cast<int>(shifted / kThird) % kSectorsPerStation;
  return SectorId{static_cast<std::uint8_t>(sector)};
}

std::vector<StationId> Topology::route(StationId from, StationId to) const {
  const GridCoord a = station_coord(from);
  const GridCoord b = station_coord(to);
  std::vector<StationId> path;
  int x = a.ix;
  int y = a.iy;
  path.push_back(station_at({x, y}));
  const int dx = b.ix > x ? 1 : -1;
  const int dy = b.iy > y ? 1 : -1;
  // Interleaved staircase: always step along the axis with more remaining
  // distance, ties broken toward x. Deterministic, so commuters repeat the
  // same cells daily.
  while (x != b.ix || y != b.iy) {
    const int rx = std::abs(b.ix - x);
    const int ry = std::abs(b.iy - y);
    if (rx >= ry && rx > 0) {
      x += dx;
    } else {
      y += dy;
    }
    path.push_back(station_at({x, y}));
  }
  return path;
}

std::array<std::size_t, kGeoClassCount> Topology::class_counts() const {
  std::array<std::size_t, kGeoClassCount> counts{};
  for (const GeoClass g : geo_) ++counts[static_cast<std::size_t>(g)];
  return counts;
}

}  // namespace ccms::net
