#include "net/carrier.h"

namespace ccms::net {

namespace {

// deployment_by_class order: {downtown, suburban, highway, rural}.
constexpr std::array<CarrierSpec, kCarrierCount> kCatalogue = {{
    // C1: low-band workhorse; everywhere.
    {CarrierId{0}, "C1", 739.0, 10.0, Technology::k4G,
     {1.00, 1.00, 1.00, 1.00}, 0.16, 0.987},
    // C2: narrow low-band; widely deployed but rarely preferred; also
    // anchors the residual 3G layer at some rural sites.
    {CarrierId{1}, "C2", 881.5, 5.0, Technology::k4G,
     {0.95, 0.90, 0.85, 0.70}, 0.09, 0.892},
    // C3: mid-band capacity layer; the workhorse by connected time.
    {CarrierId{2}, "C3", 2145.0, 20.0, Technology::k4G,
     {1.00, 1.00, 0.95, 0.75}, 0.70, 0.987},
    // C4: mid-band; ~81% of modems of this OEM support the band.
    {CarrierId{3}, "C4", 1960.0, 15.0, Technology::k4G,
     {1.00, 0.95, 0.70, 0.40}, 0.44, 0.808},
    // C5: new high band; handful of downtown sites, nearly no modem support.
    {CarrierId{4}, "C5", 2355.0, 20.0, Technology::k4G,
     {0.15, 0.00, 0.00, 0.00}, 0.40, 0.00006},
}};

}  // namespace

std::span<const CarrierSpec, kCarrierCount> carrier_catalogue() {
  return kCatalogue;
}

const CarrierSpec& carrier_spec(CarrierId id) {
  return kCatalogue[id.value];
}

double peak_throughput_mbps(CarrierId id) {
  constexpr double kSpectralEfficiencyBpsPerHz = 1.6;
  return carrier_spec(id).bandwidth_mhz * kSpectralEfficiencyBpsPerHz;
}

}  // namespace ccms::net
