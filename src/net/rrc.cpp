#include "net/rrc.h"

#include <algorithm>

namespace ccms::net {

RrcMachine::RrcMachine(const RrcConfig& config, util::Rng& rng)
    : config_(config), rng_(&rng) {}

time::Seconds RrcMachine::draw_timeout() {
  return static_cast<time::Seconds>(
      rng_->uniform(config_.timeout_min_s, config_.timeout_max_s));
}

std::optional<time::Interval> RrcMachine::on_activity(
    time::Interval activity) {
  if (activity.empty()) {
    // Instantaneous event: treat as a 1-second transfer.
    activity.end = activity.start + 1;
  }

  std::optional<time::Interval> completed;
  if (open_ && activity.start > release_at_) {
    completed = time::Interval{open_start_, release_at_};
    open_ = false;
  }
  if (!open_) {
    open_ = true;
    open_start_ = activity.start;
    release_at_ = activity.end + draw_timeout();
  } else {
    release_at_ = std::max(release_at_, activity.end + draw_timeout());
  }
  return completed;
}

std::optional<time::Interval> RrcMachine::flush() {
  if (!open_) return std::nullopt;
  open_ = false;
  return time::Interval{open_start_, release_at_};
}

bool RrcMachine::connected_at(time::Seconds t) const {
  return open_ && t >= open_start_ && t < release_at_;
}

}  // namespace ccms::net
