// Radio cells and the station/sector/carrier hierarchy.
//
// §3: "User devices ... connect to a radio cell over a certain radio
// frequency or a carrier. Each cell covers a geographic area with a
// directional antenna and it is common to find 3 such cells covering a full
// circle ... Multiple cells covering the same direction and area can be
// called a sector. For coverage and capacity, there are typically multiple
// cells per base station, anywhere from 3 to 12."
//
// We model exactly that hierarchy: a base station has 3 sectors; each sector
// hosts one cell per deployed carrier; a cell is the unit a CDR references.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/carrier.h"
#include "util/types.h"

namespace ccms::net {

/// Number of directional sectors per base station (120 degrees each).
inline constexpr int kSectorsPerStation = 3;

/// Geography class of a base station; drives background load, deployment
/// and how often car routes traverse it.
enum class GeoClass : std::uint8_t {
  kDowntown = 0,  ///< dense urban core; high background load, busy cells
  kSuburban = 1,  ///< residential ring; moderate load
  kHighway = 2,   ///< corridor sites; commute-hour bumps, high car flux
  kRural = 3,     ///< sparse edge sites; low load, few carriers
};

inline constexpr int kGeoClassCount = 4;

/// Human-readable class name.
[[nodiscard]] const char* name(GeoClass g);

/// Immutable description of one cell.
struct CellInfo {
  CellId id;
  StationId station;
  SectorId sector;
  CarrierId carrier;
  GeoClass geo = GeoClass::kSuburban;
  Technology technology = Technology::k4G;
};

/// Kinds of handover between two consecutive radio connections of one
/// session (§4.5). Classification precedence follows the paper's taxonomy:
/// technology change first, then base station, then sector, then carrier.
enum class HandoverType : std::uint8_t {
  kNone = 0,             ///< same cell (re-connection, not a handover)
  kInterTechnology = 1,  ///< 3G <-> 4G
  kInterStation = 2,     ///< across base stations (the dominant kind)
  kInterSector = 3,      ///< between sectors of the same base station
  kInterCarrier = 4,     ///< between carriers of the same sector
};

inline constexpr int kHandoverTypeCount = 5;

/// Human-readable handover-type name.
[[nodiscard]] const char* name(HandoverType t);

/// Classify the transition from cell `a` to cell `b`.
[[nodiscard]] HandoverType classify_handover(const CellInfo& a,
                                             const CellInfo& b);

/// Dense table of all cells in the network, addressable by CellId, plus
/// per-station cell lists. Built once by the Topology; analyses only read it.
class CellTable {
 public:
  CellTable() = default;

  /// Appends a cell for (station, sector, carrier); returns its id.
  /// Stations must be added in nondecreasing order of station id.
  CellId add(StationId station, SectorId sector, CarrierId carrier,
             GeoClass geo, Technology technology = Technology::k4G);

  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const CellInfo& info(CellId id) const {
    return cells_[id.value];
  }

  /// All cells of one station (empty span for unknown stations).
  [[nodiscard]] std::span<const CellId> cells_of(StationId station) const;

  /// Number of distinct stations that own at least one cell.
  [[nodiscard]] std::size_t station_count() const {
    return by_station_.size();
  }

  /// All cells, id order.
  [[nodiscard]] const std::vector<CellInfo>& all() const { return cells_; }

 private:
  std::vector<CellInfo> cells_;
  std::vector<std::vector<CellId>> by_station_;
};

}  // namespace ccms::net
