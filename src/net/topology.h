// Synthetic radio-access-network topology.
//
// A production network has hundreds of thousands of cells (§3); the analyses
// only require that cars traverse a realistic *structure*: a dense urban core
// whose cells run hot (the "busy radios" of Table 2 / Figs 7, 10, 11),
// suburban rings where commuters live, highway corridors that funnel many
// cars through the same few cells, and a rural fringe most cars never touch
// (Fig 2's "two-thirds of cells see cars on a given day").
//
// We build a W x H grid of base stations. Geography classes are assigned by
// position (centre box = downtown, cross-shaped corridors = highway, ring =
// suburban, edge = rural). Each station has 3 sectors; each sector hosts one
// cell per carrier the station deploys (deployment is per-class
// probabilistic, per net::carrier_catalogue()).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/cell.h"
#include "util/rng.h"
#include "util/types.h"

namespace ccms::net {

/// A point in the service area, kilometres from the south-west corner.
struct Position {
  double x = 0;
  double y = 0;
  friend constexpr bool operator==(const Position&, const Position&) = default;
};

/// Integer grid coordinates of a station.
struct GridCoord {
  int ix = 0;
  int iy = 0;
  friend constexpr bool operator==(const GridCoord&, const GridCoord&) = default;
};

/// Parameters of the synthetic grid.
struct TopologyConfig {
  int grid_width = 24;             ///< stations per row
  int grid_height = 24;            ///< stations per column
  double spacing_km = 1.6;         ///< inter-site distance
  double downtown_radius = 0.14;   ///< fraction of half-diagonal => downtown
  double suburban_radius = 0.60;   ///< fraction of half-diagonal => suburban
};

/// The network graph: stations on a grid, cells per station, routing.
class Topology {
 public:
  /// Builds the grid; carrier deployment draws from `rng`.
  Topology(const TopologyConfig& config, util::Rng& rng);

  [[nodiscard]] const CellTable& cells() const { return cells_; }
  [[nodiscard]] std::size_t station_count() const { return geo_.size(); }
  [[nodiscard]] const TopologyConfig& config() const { return config_; }

  [[nodiscard]] GeoClass station_class(StationId s) const {
    return geo_[s.value];
  }
  [[nodiscard]] Position station_position(StationId s) const;
  [[nodiscard]] GridCoord station_coord(StationId s) const;
  [[nodiscard]] StationId station_at(GridCoord c) const;

  /// Station whose position is nearest to `p` (grid round + clamp).
  [[nodiscard]] StationId nearest_station(Position p) const;

  /// Carriers deployed at `s` (subset of C1..C5).
  [[nodiscard]] std::span<const CarrierId> carriers_at(StationId s) const {
    return deployed_[s.value];
  }

  /// The cell serving (station, sector, carrier), if that carrier is
  /// deployed there.
  [[nodiscard]] std::optional<CellId> cell_at(StationId s, SectorId sector,
                                              CarrierId carrier) const;

  /// Sector of station `s` facing position `p` (3 sectors of 120 degrees;
  /// sector 0 faces east, 1 faces north-west, 2 faces south-west).
  [[nodiscard]] SectorId sector_towards(StationId s, Position p) const;

  /// Grid staircase route between two stations, inclusive of both endpoints.
  /// Deterministic (x-then-y interleaved Bresenham walk), so a given
  /// commuter's route is the same every day — the repetition behind the
  /// strong weekly patterns of Fig 5.
  [[nodiscard]] std::vector<StationId> route(StationId from, StationId to) const;

  /// Number of stations of each geography class, indexed by GeoClass.
  [[nodiscard]] std::array<std::size_t, kGeoClassCount> class_counts() const;

 private:
  TopologyConfig config_;
  std::vector<GeoClass> geo_;                      // per station
  std::vector<std::vector<CarrierId>> deployed_;   // per station
  // cell id for (station, sector, carrier) or -1: indexed
  // [station * kSectorsPerStation * kCarrierCount + sector * kCarrierCount + carrier]
  std::vector<std::int32_t> cell_lookup_;
  CellTable cells_;
};

}  // namespace ccms::net
