// Background (non-car) cell load model.
//
// Busy-cell classification is central to the paper: Table 2 counts a car's
// time "in cells with average U_PRB > 80% for those 15-minute bins", Fig 7
// plots time-in-busy-cells deciles, and Fig 11 clusters cells whose weekly
// average PRB utilisation is >= 70%. The cars themselves contribute little
// background load (CDRs carry no volumes), so we model U_PRB as an exogenous
// weekly profile per cell:
//
//   U(cell, bin) = clamp(base(class) * diurnal(class, hour) * weekend(class,
//                  day) * cell_scale * (1 + jitter), 0, 1)
//
// where cell_scale is a per-cell lognormal factor and a fraction of downtown
// cells get an extra "hot" boost, producing the small population of
// persistently busy radios the paper studies.
#pragma once

#include <vector>

#include "net/cell.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/time.h"

namespace ccms::net {

/// Tunables of the background load model.
struct LoadModelConfig {
  /// Base utilisation per GeoClass {downtown, suburban, highway, rural}.
  std::array<double, kGeoClassCount> base = {0.50, 0.27, 0.30, 0.10};
  /// Log-space sigma of the per-cell scale factor.
  double cell_scale_sigma = 0.28;
  /// Fraction of cells per class that are persistently hot (cross the
  /// busy threshold during peak bins) — real networks have hot spots in
  /// every geography, not just the urban core.
  std::array<double, kGeoClassCount> hot_fraction = {0.50, 0.10, 0.12, 0.0};
  /// Multiplier applied to hot cells' base, per class (suburban/highway
  /// bases are low, so their hot spots need a larger boost to cross 80%).
  std::array<double, kGeoClassCount> hot_boost = {1.60, 2.60, 2.30, 1.0};
  /// Fraction of *stations* per class that are super-hot: every sector runs
  /// near saturation through all waking hours (stadium, transit hub, dense
  /// venue). Cars living at such sites spend ~all their connected time on
  /// busy radios — Fig 7's ~1% tail.
  std::array<double, kGeoClassCount> superhot_fraction = {0.08, 0.007, 0.02,
                                                          0.0};
  /// Boost applied to super-hot stations' cells.
  std::array<double, kGeoClassCount> superhot_boost = {2.30, 3.60, 3.20, 1.0};
  /// Radius (as a fraction of the grid half-diagonal) of the saturated urban
  /// core: every station inside is super-hot. The contiguity is what lets a
  /// core-resident car spend effectively *all* its connected time on busy
  /// radios (Fig 7's ~1% tail) - every cell it can reach is congested.
  double core_radius = 0.05;
  /// Uniform per-bin noise amplitude (+- this fraction).
  double jitter = 0.05;
};

/// Immutable per-cell weekly background U_PRB profiles (672 bins each).
class BackgroundLoad {
 public:
  /// Builds profiles for every cell of `topology`. Deterministic given
  /// `rng`.
  BackgroundLoad(const Topology& topology, const LoadModelConfig& config,
                 util::Rng& rng);

  /// Background utilisation in [0,1] for `cell` during bin-of-week `bin`.
  [[nodiscard]] double utilization(CellId cell, int bin_of_week) const {
    return profiles_[cell.value][static_cast<std::size_t>(bin_of_week)];
  }

  /// Background utilisation at time `t`.
  [[nodiscard]] double utilization_at(CellId cell, time::Seconds t) const {
    return utilization(cell, time::bin15_of_week(t));
  }

  /// Whole weekly profile of one cell (672 values, Monday 00:00 first).
  [[nodiscard]] std::span<const float> profile(CellId cell) const {
    return profiles_[cell.value];
  }

  /// Mean over the whole week for one cell.
  [[nodiscard]] double weekly_mean(CellId cell) const;

  [[nodiscard]] std::size_t cell_count() const { return profiles_.size(); }

 private:
  std::vector<std::vector<float>> profiles_;
};

/// The deterministic diurnal multiplier for a geography class at a given
/// hour of day (0..23) and weekday. Exposed for tests and for the PRB
/// saturation experiment (Fig 1), which needs the same "average day" shape.
[[nodiscard]] double diurnal_multiplier(GeoClass geo, int hour,
                                        time::Weekday day);

}  // namespace ccms::net
