#include "net/map.h"

namespace ccms::net {

std::string render_geo_map(const Topology& topology) {
  std::string out;
  const int w = topology.config().grid_width;
  const int h = topology.config().grid_height;
  out.reserve(static_cast<std::size_t>((w + 1) * h));
  for (int iy = h - 1; iy >= 0; --iy) {  // north at the top
    for (int ix = 0; ix < w; ++ix) {
      switch (topology.station_class(topology.station_at({ix, iy}))) {
        case GeoClass::kDowntown:
          out.push_back('D');
          break;
        case GeoClass::kSuburban:
          out.push_back('s');
          break;
        case GeoClass::kHighway:
          out.push_back('+');
          break;
        case GeoClass::kRural:
          out.push_back('.');
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

std::string render_load_map(const Topology& topology,
                            const BackgroundLoad& background) {
  static constexpr char kShades[] = " .:-=+*#%@";
  std::string out;
  const int w = topology.config().grid_width;
  const int h = topology.config().grid_height;
  for (int iy = h - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < w; ++ix) {
      const StationId station = topology.station_at({ix, iy});
      double sum = 0;
      int n = 0;
      for (const CellId cell : topology.cells().cells_of(station)) {
        sum += background.weekly_mean(cell);
        ++n;
      }
      const double mean = n > 0 ? sum / n : 0;
      int level = static_cast<int>(mean * 10);
      if (level > 9) level = 9;
      if (level < 0) level = 0;
      out.push_back(kShades[level]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace ccms::net
