#include "exec/thread_pool.h"

#include <algorithm>

namespace ccms::exec {

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int width = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(width - 1));
  for (int i = 1; i < width; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_slice();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--inflight_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::run_slice() {
  // fn_/job_size_ are written before the generation bump that released this
  // thread (or before any worker started, for the caller), so reading them
  // without the lock here is safe for the duration of the job.
  const auto* fn = fn_;
  const std::size_t n = job_size_;
  while (!abort_.load(std::memory_order_relaxed)) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      (*fn)(i);
    } catch (...) {
      record_exception();
    }
  }
}

void ThreadPool::record_exception() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) error_ = std::current_exception();
  abort_.store(true, std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    abort_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    inflight_ = workers_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  run_slice();
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [&] { return inflight_ == 0; });
  fn_ = nullptr;
  job_size_ = 0;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace ccms::exec
