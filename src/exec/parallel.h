// Deterministic parallel reduction over indexed items (e.g. Dataset spans).
//
// The contract that makes run_study bitwise identical for any thread count:
//
//   1. Items [0, n) are cut into fixed-size chunks. Chunk boundaries depend
//      only on n and chunk_size — never on how many threads execute them.
//   2. Each chunk folds its items sequentially, in ascending index order,
//      into a chunk-local accumulator.
//   3. Chunk accumulators merge left-to-right in ascending chunk order.
//
// Threads only decide *when* a chunk is computed, never *what* is computed
// or in which order results combine, so every floating-point operation
// sequence is identical across pool sizes (including 1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "exec/thread_pool.h"

namespace ccms::exec {

/// Default chunk width for span sweeps: small enough to load-balance a
/// skewed fleet across 8+ threads, large enough to amortise the per-chunk
/// accumulator setup.
inline constexpr std::size_t kDefaultChunk = 64;

/// Folds items [0, n) into one accumulator. `make()` builds an empty
/// accumulator, `fold(acc, i)` integrates item i, `merge(into, from)`
/// combines two chunk accumulators whose item ranges are adjacent (`from`
/// strictly after `into`). Returns make() for n == 0.
template <typename MakeFn, typename FoldFn, typename MergeFn>
auto parallel_reduce(ThreadPool& pool, std::size_t n, std::size_t chunk_size,
                     const MakeFn& make, const FoldFn& fold,
                     const MergeFn& merge) {
  using Acc = decltype(make());
  chunk_size = std::max<std::size_t>(1, chunk_size);
  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
  if (chunks <= 1) {
    Acc acc = make();
    for (std::size_t i = 0; i < n; ++i) fold(acc, i);
    return acc;
  }

  std::vector<std::optional<Acc>> parts(chunks);
  pool.parallel_for(chunks, [&](std::size_t c) {
    Acc acc = make();
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    for (std::size_t i = begin; i < end; ++i) fold(acc, i);
    parts[c].emplace(std::move(acc));
  });

  Acc result = std::move(*parts[0]);
  for (std::size_t c = 1; c < chunks; ++c) {
    merge(result, std::move(*parts[c]));
  }
  return result;
}

/// parallel_reduce over a materialised span list (Dataset::car_spans() /
/// cell_spans()): fold(acc, span) is called for every span, chunked and
/// merged deterministically as above.
template <typename Span, typename MakeFn, typename FoldFn, typename MergeFn>
auto parallel_over_spans(ThreadPool& pool, const std::vector<Span>& spans,
                         const MakeFn& make, const FoldFn& fold,
                         const MergeFn& merge,
                         std::size_t chunk_size = kDefaultChunk) {
  return parallel_reduce(
      pool, spans.size(), chunk_size, make,
      [&](auto& acc, std::size_t i) { fold(acc, spans[i]); }, merge);
}

}  // namespace ccms::exec
