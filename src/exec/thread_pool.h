// Minimal fixed-size thread pool for the deterministic batch executor.
//
// Deliberately work-stealing-free: parallel_for hands out indices from one
// atomic counter, so which *thread* runs an index is nondeterministic, but
// nothing in the pool's API exposes thread identity — callers that keep
// per-index (or per-chunk) results and combine them in index order get
// bitwise-identical output for any pool size (see exec/parallel.h).
//
// One job runs at a time; the calling thread participates, so a pool of
// size 1 owns no worker threads at all and parallel_for degenerates to a
// plain sequential loop on the caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccms::exec {

class ThreadPool {
 public:
  /// `threads` <= 0 means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width: worker threads + the participating caller.
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Resolves a `threads` knob: <= 0 -> hardware_concurrency (min 1).
  [[nodiscard]] static int resolve_threads(int threads);

  /// Runs fn(0) .. fn(n-1), each exactly once, across the pool and the
  /// calling thread. Blocks until every index finished. If any invocation
  /// throws, the first exception (in completion order) is rethrown here
  /// after all threads stop picking up new indices; the pool stays usable.
  /// Not reentrant: fn must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void run_slice();
  void record_exception();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;  ///< caller -> workers
  std::condition_variable work_done_;   ///< workers -> caller
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mutex_
  std::size_t job_size_ = 0;                              // guarded by mutex_
  std::uint64_t generation_ = 0;  ///< bumped per job (guarded by mutex_)
  std::size_t inflight_ = 0;      ///< workers still on the current job
  std::exception_ptr error_;      // guarded by mutex_
  bool stop_ = false;

  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::atomic<bool> abort_{false};    ///< a task threw; stop claiming work
};

}  // namespace ccms::exec
