// External chunked sort: spill sorted runs to disk, k-way merge them back.
//
// The determinism argument extends exec/parallel_sort.h's: records are cut
// into fixed-capacity runs in arrival order, each run is stable-sorted
// (via parallel_stable_sort, itself equivalent to std::stable_sort for any
// pool width), and the k-way merge pops the smallest head, breaking
// comparator ties by run index — i.e. by original arrival order, since runs
// are spilled in arrival order and are stable within. The merged output is
// therefore the unique stable ordering of the whole input, identical to
// what one std::stable_sort over everything would produce, regardless of
// the run partition, the buffer capacity, or the thread count. With a
// total-order comparator (cdr::ByCarThenStart compares every field) ties
// cannot occur at all and the output equals std::sort's.
//
// This is what lets Dataset::finalize's ordering exist for datasets that
// never fit in RAM: the 1M-car bench generates records car by car, pushes
// them through an ExternalSorter, and streams the merged order directly
// into a ColumnarWriter with peak memory = buffer + merge windows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"

namespace ccms::exec {

/// Default in-memory run capacity, in records. 8M 16-byte records ≈ 128 MiB
/// of buffer — small against the 25%-of-AoS RSS budget, large enough that a
/// 90-day 1M-car study spills ~100 runs (one merge level).
inline constexpr std::size_t kDefaultRunRecords = std::size_t{1} << 23;

/// Out-of-core stable sorter for trivially-copyable records.
///
///   ExternalSorter<Connection, ByCarThenStart> sorter(opts);
///   for (...) sorter.add(record);
///   sorter.merge([&](const Connection& c) { writer.add(c); });
///
/// Runs are raw arrays of T in temp files under `spill_dir`; the files are
/// removed on merge completion and in the destructor.
template <typename T, typename Cmp>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  struct Options {
    std::string spill_dir;  ///< where run files go (must exist)
    std::size_t run_records = kDefaultRunRecords;
    int threads = 1;  ///< pool width for the in-memory run sorts
    /// Records per merge-window refill, per run. 64k records * ~100 runs
    /// ≈ 100 MiB of merge windows at 16 B/record.
    std::size_t window_records = std::size_t{1} << 16;
  };

  explicit ExternalSorter(Options options, Cmp cmp = {})
      : options_(std::move(options)), cmp_(cmp), pool_(options_.threads) {
    options_.run_records = std::max<std::size_t>(1, options_.run_records);
    options_.window_records = std::max<std::size_t>(1, options_.window_records);
    buffer_.reserve(options_.run_records);
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  ~ExternalSorter() { remove_runs(); }

  void add(const T& item) {
    buffer_.push_back(item);
    ++total_;
    if (buffer_.size() >= options_.run_records) spill();
  }

  [[nodiscard]] std::uint64_t size() const { return total_; }
  [[nodiscard]] std::uint64_t bytes_spilled() const { return bytes_spilled_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }

  /// Emits every record in stable sorted order. If nothing was spilled the
  /// merge is a plain in-memory sweep. Call once; run files are removed
  /// afterwards.
  template <typename Emit>
  void merge(Emit&& emit) {
    if (runs_.empty()) {
      parallel_stable_sort(pool_, buffer_, cmp_);
      for (const T& item : buffer_) emit(item);
      buffer_.clear();
      buffer_.shrink_to_fit();
      return;
    }
    if (!buffer_.empty()) spill();
    buffer_.shrink_to_fit();

    std::vector<RunReader> readers;
    readers.reserve(runs_.size());
    for (const std::string& path : runs_) {
      readers.emplace_back(path, options_.window_records);
    }

    // Min-heap over run heads; ties break toward the lower run index, which
    // is the earlier arrival position — the stable order.
    struct Head {
      T value;
      std::size_t run;
    };
    const auto greater = [this](const Head& a, const Head& b) {
      if (cmp_(a.value, b.value)) return false;
      if (cmp_(b.value, a.value)) return true;
      return a.run > b.run;
    };
    std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
        greater);
    for (std::size_t r = 0; r < readers.size(); ++r) {
      T v;
      if (readers[r].next(v)) heap.push(Head{v, r});
    }
    while (!heap.empty()) {
      Head head = heap.top();
      heap.pop();
      emit(head.value);
      T v;
      if (readers[head.run].next(v)) heap.push(Head{v, head.run});
    }
    readers.clear();
    remove_runs();
  }

 private:
  /// Buffered sequential reader over one spilled run.
  class RunReader {
   public:
    RunReader(const std::string& path, std::size_t window)
        : file_(std::fopen(path.c_str(), "rb")), window_(window) {
      if (file_ == nullptr) {
        throw std::runtime_error("external sort: cannot reopen run " + path);
      }
    }
    RunReader(RunReader&& o) noexcept
        : file_(o.file_), window_(o.window_), chunk_(std::move(o.chunk_)),
          pos_(o.pos_) {
      o.file_ = nullptr;
    }
    RunReader(const RunReader&) = delete;
    ~RunReader() {
      if (file_ != nullptr) std::fclose(file_);
    }

    bool next(T& out) {
      if (pos_ >= chunk_.size()) {
        chunk_.resize(window_);
        const std::size_t got =
            std::fread(chunk_.data(), sizeof(T), window_, file_);
        chunk_.resize(got);
        pos_ = 0;
        if (got == 0) return false;
      }
      out = chunk_[pos_++];
      return true;
    }

   private:
    std::FILE* file_ = nullptr;
    std::size_t window_;
    std::vector<T> chunk_;
    std::size_t pos_ = 0;
  };

  void spill() {
    parallel_stable_sort(pool_, buffer_, cmp_);
    const std::string path =
        (std::filesystem::path(options_.spill_dir) /
         ("ccms_sort_run_" + std::to_string(runs_.size()) + ".bin"))
            .string();
    std::FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      throw std::runtime_error("external sort: cannot create run " + path);
    }
    const std::size_t wrote =
        std::fwrite(buffer_.data(), sizeof(T), buffer_.size(), out);
    const bool ok = wrote == buffer_.size() && std::fclose(out) == 0;
    if (!ok) {
      std::remove(path.c_str());
      throw std::runtime_error("external sort: short write to " + path);
    }
    bytes_spilled_ += static_cast<std::uint64_t>(wrote) * sizeof(T);
    runs_.push_back(path);
    buffer_.clear();
  }

  void remove_runs() {
    for (const std::string& path : runs_) std::remove(path.c_str());
    runs_.clear();
  }

  Options options_;
  Cmp cmp_;
  ThreadPool pool_;
  std::vector<T> buffer_;
  std::vector<std::string> runs_;
  std::uint64_t total_ = 0;
  std::uint64_t bytes_spilled_ = 0;
};

}  // namespace ccms::exec
