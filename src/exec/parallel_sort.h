// Deterministic parallel merge sort for the front of the pipeline
// (Dataset::finalize's record sort and by-cell permutation).
//
// The determinism argument extends exec/parallel.h's: the input is cut into
// fixed-size chunks, each chunk is stable-sorted independently, and adjacent
// runs are combined level by level with *stable* pairwise merges
// (std::merge takes from the left run on ties). A stable merge sort's
// output is the unique stable ordering of the input — elements ordered by
// key, ties by original position — so the result does not depend on the
// chunk partition, the merge tree, or how many threads execute it. With a
// total-order comparator (cdr::ByCarThenStart / ByCellThenStart compare
// every field) the result is additionally identical to std::sort's.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"

namespace ccms::exec {

/// Default chunk width for parallel sorting: large enough that per-chunk
/// std::stable_sort dominates the merge overhead, small enough to spread a
/// finalize-sized sort across 8+ threads.
inline constexpr std::size_t kDefaultSortChunk = std::size_t{1} << 15;

/// Stable-sorts `v` in place using `pool`. Equivalent to
/// std::stable_sort(v.begin(), v.end(), cmp) — bitwise, for every pool
/// width and chunk size — because stable chunk sorts + stable pairwise
/// merges reproduce the unique stable ordering regardless of partition.
template <typename T, typename Cmp>
void parallel_stable_sort(ThreadPool& pool, std::vector<T>& v, Cmp cmp,
                          std::size_t chunk_size = kDefaultSortChunk) {
  chunk_size = std::max<std::size_t>(1, chunk_size);
  const std::size_t n = v.size();
  if (n <= chunk_size || pool.size() == 1) {
    std::stable_sort(v.begin(), v.end(), cmp);
    return;
  }

  const std::size_t chunks = (n + chunk_size - 1) / chunk_size;
  pool.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    std::stable_sort(v.begin() + static_cast<std::ptrdiff_t>(begin),
                     v.begin() + static_cast<std::ptrdiff_t>(end), cmp);
  });

  // Level-by-level pairwise merges between ping-pong buffers. Each level
  // doubles the sorted-run width; runs without a right-hand partner are
  // copied through unchanged.
  std::vector<T> scratch(n);
  std::vector<T>* src = &v;
  std::vector<T>* dst = &scratch;
  for (std::size_t width = chunk_size; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallel_for(pairs, [&](std::size_t p) {
      const std::size_t lo = p * 2 * width;
      const std::size_t mid = std::min(n, lo + width);
      const std::size_t hi = std::min(n, lo + 2 * width);
      const auto b = src->begin();
      auto out = dst->begin() + static_cast<std::ptrdiff_t>(lo);
      if (mid == hi) {
        std::move(b + static_cast<std::ptrdiff_t>(lo),
                  b + static_cast<std::ptrdiff_t>(hi), out);
      } else {
        std::merge(std::make_move_iterator(b + static_cast<std::ptrdiff_t>(lo)),
                   std::make_move_iterator(b + static_cast<std::ptrdiff_t>(mid)),
                   std::make_move_iterator(b + static_cast<std::ptrdiff_t>(mid)),
                   std::make_move_iterator(b + static_cast<std::ptrdiff_t>(hi)),
                   out, cmp);
      }
    });
    std::swap(src, dst);
  }
  if (src != &v) v.swap(scratch);
}

}  // namespace ccms::exec
