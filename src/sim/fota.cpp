#include "sim/fota.h"

#include <algorithm>

#include "util/time.h"

namespace ccms::sim {

std::vector<double> weekday_average_day(const net::BackgroundLoad& background,
                                        CellId cell) {
  std::vector<double> day(time::kBins15PerDay, 0.0);
  const auto profile = background.profile(cell);
  for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
    double sum = 0;
    for (int d = 0; d < 5; ++d) {  // Monday..Friday
      sum += profile[static_cast<std::size_t>(d * time::kBins15PerDay + bin)];
    }
    day[static_cast<std::size_t>(bin)] = sum / 5.0;
  }
  return day;
}

SaturationResult saturation_experiment(const net::BackgroundLoad& background,
                                       const net::CellTable& cells,
                                       CellId cell, int start_bin,
                                       int duration_bins) {
  SaturationResult result;
  result.cell = cell;
  result.average_day = weekday_average_day(background, cell);

  const net::GreedyFlow flow{start_bin, duration_bins, 1.0};
  const CarrierId carrier = cells.info(cell).carrier;
  const net::PrbDayResult day = net::simulate_day(
      result.average_day, std::span<const net::GreedyFlow>(&flow, 1), carrier);

  result.test_day = day.utilization;
  result.delivered_mb = day.delivered_mb;
  for (int k = 0; k < duration_bins; ++k) {
    const int bin = (start_bin + k) % time::kBins15PerDay;
    result.peak_utilization =
        std::max(result.peak_utilization,
                 result.test_day[static_cast<std::size_t>(bin)]);
  }
  return result;
}

std::vector<CellId> pick_test_cells(const net::BackgroundLoad& background,
                                    const net::CellTable& cells, int count,
                                    double lo, double hi) {
  std::vector<CellId> picked;
  for (const net::CellInfo& info : cells.all()) {
    const double mean = background.weekly_mean(info.id);
    if (mean >= lo && mean <= hi) {
      picked.push_back(info.id);
      if (static_cast<int>(picked.size()) >= count) break;
    }
  }
  return picked;
}

const char* name(DeliveryPolicy policy) {
  switch (policy) {
    case DeliveryPolicy::kImmediate:
      return "immediate";
    case DeliveryPolicy::kRandomizedOffCommute:
      return "randomized-off-commute";
    case DeliveryPolicy::kOffPeakWindow:
      return "off-peak-window";
  }
  return "?";
}

CampaignPlan plan_campaign(std::span<const FotaCarInput> cars,
                           const net::BackgroundLoad& background,
                           const net::CellTable& cells,
                           const CampaignConfig& config) {
  CampaignPlan plan;
  plan.cars.reserve(cars.size());

  for (const FotaCarInput& input : cars) {
    CarPlan car_plan;
    car_plan.car = input.car;

    if (input.days_on_network <= config.rare_days) {
      car_plan.policy = DeliveryPolicy::kImmediate;
      car_plan.start_bin = config.immediate_bin;
    } else if (input.busy_share > config.busy_share_special) {
      car_plan.policy = DeliveryPolicy::kOffPeakWindow;
      car_plan.start_bin = config.offpeak_bin;
    } else {
      car_plan.policy = DeliveryPolicy::kRandomizedOffCommute;
      car_plan.start_bin = config.randomized_bin;
    }
    ++plan.policy_counts[static_cast<std::size_t>(car_plan.policy)];

    car_plan.planned_seconds =
        fota_download_seconds(background, cells, input.home_cell,
                              config.update_mb, car_plan.start_bin);
    car_plan.naive_seconds =
        fota_download_seconds(background, cells, input.home_cell,
                              config.update_mb, config.naive_bin);

    if (car_plan.planned_seconds < 0 || car_plan.naive_seconds < 0) {
      ++plan.deferred;
    } else {
      plan.naive_hours += car_plan.naive_seconds / 3600.0;
      plan.planned_hours += car_plan.planned_seconds / 3600.0;
    }
    plan.cars.push_back(car_plan);
  }
  return plan;
}

double fota_download_seconds(const net::BackgroundLoad& background,
                             const net::CellTable& cells, CellId cell,
                             double megabytes, int start_bin) {
  const std::vector<double> day = weekday_average_day(background, cell);
  return net::download_time_seconds(megabytes, day, start_bin,
                                    cells.info(cell).carrier);
}

}  // namespace ccms::sim
