// Whole-simulation configuration.
//
// One SimConfig fully determines a synthetic study: topology, background
// load, fleet, generator tunables, study length and the operational warts
// the paper mentions (partial data loss on 3 days in the second half of the
// study, the slow upward adoption trend, and the higher Friday/Saturday
// variability of Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fleet/connection_gen.h"
#include "fleet/fleet_builder.h"
#include "net/load.h"
#include "net/topology.h"

namespace ccms::sim {

struct SimConfig {
  /// Master seed; every random draw in the study derives from it.
  std::uint64_t seed = 20170901;

  /// Study length in days; the paper's is 90, starting on a Monday.
  int study_days = 90;

  /// Generation parallelism: 1 = sequential (default), 0 = hardware
  /// concurrency, N = N threads. Every car draws from its own counter-based
  /// RNG stream (master seed ⊕ car id) and per-chunk record buffers are
  /// concatenated in car order, so the produced trace is bitwise identical
  /// for every value — including 1 (the historical sequential path).
  int threads = 1;

  net::TopologyConfig topology;
  net::LoadModelConfig load;
  fleet::FleetConfig fleet;
  fleet::GenConfig gen;

  /// Days with partial record loss (§4: "Due to some data loss during
  /// 3 days in the second half of the study period, the number of cars
  /// appears smaller").
  std::vector<int> data_loss_days = {55, 56, 57};
  /// Fraction of records dropped on those days.
  double data_loss_fraction = 0.35;

  /// Relative growth of fleet activity per day (Fig 2's trend lines show a
  /// slow increase over the study).
  double daily_trend = 0.0006;

  /// Standard deviation of the global day-activity factor per weekday
  /// Mon..Sun; Friday and Saturday are the most variable days in Table 1.
  std::array<double, 7> dow_noise_sigma = {0.012, 0.015, 0.012, 0.012,
                                           0.045, 0.075, 0.022};

  /// The defaults above with the default fleet/topology sizes: the scaled
  /// stand-in for the paper's 1M-car national study.
  [[nodiscard]] static SimConfig paper_default();

  /// A small, fast configuration for unit tests (hundreds of cars, a few
  /// weeks, small grid).
  [[nodiscard]] static SimConfig quick();

  /// `quick()` with every modelled data quirk disabled: no exactly-1-hour
  /// reporting artifacts and no partial-loss days. Fault-injection tests
  /// and the robustness sweep start from this so that *injected* faults are
  /// the only dirt in the trace and detection counts can be asserted
  /// exactly.
  [[nodiscard]] static SimConfig pristine();
};

}  // namespace ccms::sim
