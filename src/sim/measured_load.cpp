#include "sim/measured_load.h"

#include <algorithm>

namespace ccms::sim {

core::CellLoad measured_load(const net::BackgroundLoad& background,
                             const cdr::Dataset& cleaned,
                             double car_prb_share) {
  const core::ConcurrencyGrid grid = core::ConcurrencyGrid::build(cleaned);

  std::vector<std::vector<float>> profiles(background.cell_count());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto cell = CellId{static_cast<std::uint32_t>(i)};
    const auto bg = background.profile(cell);
    profiles[i].assign(bg.begin(), bg.end());
  }
  for (const core::CellConcurrency& profile : grid.cells()) {
    if (profile.cell.value >= profiles.size()) continue;
    auto& out = profiles[profile.cell.value];
    for (int bin = 0; bin < time::kBins15PerWeek; ++bin) {
      const auto b = static_cast<std::size_t>(bin);
      out[b] = static_cast<float>(std::clamp(
          static_cast<double>(out[b]) + car_prb_share * profile.weekly[b],
          0.0, 1.0));
    }
  }
  return core::CellLoad::from_profiles(std::move(profiles));
}

}  // namespace ccms::sim
