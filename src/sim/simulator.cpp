#include "sim/simulator.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "fleet/schedule.h"
#include "util/rng.h"

namespace ccms::sim {

SimConfig SimConfig::paper_default() {
  SimConfig config;
  config.fleet.size = 4000;
  config.topology.grid_width = 40;
  config.topology.grid_height = 40;
  return config;
}

SimConfig SimConfig::quick() {
  SimConfig config;
  config.seed = 7;
  config.study_days = 28;
  config.fleet.size = 300;
  config.topology.grid_width = 12;
  config.topology.grid_height = 12;
  return config;
}

SimConfig SimConfig::pristine() {
  SimConfig config = quick();
  config.gen.hour_artifact_per_trip = 0;
  config.data_loss_days.clear();
  config.data_loss_fraction = 0;
  return config;
}

Study simulate(const SimConfig& config) {
  util::Rng master(config.seed);
  util::Rng topo_rng = master.split(0x701ULL);
  util::Rng load_rng = master.split(0x10ADULL);
  util::Rng fleet_rng = master.split(0xF1EE7ULL);
  util::Rng day_rng = master.split(0xDA75ULL);


  exec::ThreadPool pool(config.threads);

  net::Topology topology(config.topology, topo_rng);
  net::BackgroundLoad background(topology, config.load, load_rng);
  std::vector<fleet::CarProfile> cars =
      fleet::build_fleet(topology, config.fleet, fleet_rng, pool);

  // Global per-day activity factors: slow adoption trend plus day-of-week
  // dependent variability (Friday/Saturday are the noisy days in Table 1).
  std::vector<double> day_factors(static_cast<std::size_t>(config.study_days),
                                  1.0);
  for (int d = 0; d < config.study_days; ++d) {
    const auto dow = static_cast<std::size_t>(
        time::weekday(static_cast<time::Seconds>(d) * time::kSecondsPerDay));
    const double noise = day_rng.normal(0.0, config.dow_noise_sigma[dow]);
    day_factors[static_cast<std::size_t>(d)] =
        std::max(0.2, (1.0 + config.daily_trend * d) * (1.0 + noise));
  }

  const fleet::ConnectionGenerator generator(topology, config.gen);
  const time::Seconds study_end =
      static_cast<time::Seconds>(config.study_days) * time::kSecondsPerDay;

  // Per-car trace generation, parallelized over fixed-size car chunks.
  // Every car's draws come from its own counter-based stream
  // (master.split(tag + car id)), and per-chunk buffers concatenate in car
  // order, so the record sequence below is byte-for-byte the one the
  // sequential loop produced.
  constexpr std::size_t kCarChunk = 32;
  const std::size_t chunk_count =
      (cars.size() + kCarChunk - 1) / kCarChunk;
  std::vector<std::vector<cdr::Connection>> chunks(chunk_count);
  pool.parallel_for(chunk_count, [&](std::size_t c) {
    std::vector<cdr::Connection>& out = chunks[c];
    const std::size_t begin = c * kCarChunk;
    const std::size_t end = std::min(cars.size(), begin + kCarChunk);
    out.reserve((end - begin) *
                static_cast<std::size_t>(config.study_days) * 8);
    for (std::size_t i = begin; i < end; ++i) {
      const fleet::CarProfile& car = cars[i];
      util::Rng car_rng = master.split(0xCACA000000ULL + car.id.value);
      for (int day = 0; day < config.study_days; ++day) {
        const fleet::DayContext ctx{day,
                                    day_factors[static_cast<std::size_t>(day)]};
        const std::vector<fleet::Trip> trips =
            fleet::plan_day(car, topology, ctx, car_rng);
        for (const fleet::Trip& trip : trips) {
          generator.generate_trip(car, trip, car_rng, out);
        }
      }
    }
  });

  std::size_t total_records = 0;
  for (const auto& chunk : chunks) total_records += chunk.size();
  std::vector<cdr::Connection> records;
  records.reserve(total_records);
  for (auto& chunk : chunks) {
    records.insert(records.end(), chunk.begin(), chunk.end());
  }
  chunks.clear();
  chunks.shrink_to_fit();

  // Right-censor at the study boundary (the export window ends), drop
  // records that fall outside entirely, and apply the partial-loss days.
  std::vector<char> lossy_day(static_cast<std::size_t>(config.study_days), 0);
  for (const int d : config.data_loss_days) {
    if (d >= 0 && d < config.study_days) {
      lossy_day[static_cast<std::size_t>(d)] = 1;
    }
  }

  cdr::Dataset dataset;
  dataset.set_fleet_size(static_cast<std::uint32_t>(config.fleet.size));
  dataset.set_study_days(config.study_days);
  dataset.reserve(records.size());
  for (cdr::Connection c : records) {
    if (c.start >= study_end || c.end() <= 0) continue;
    if (c.start < 0) {
      c.duration_s = static_cast<std::int32_t>(c.end());
      c.start = 0;
    }
    if (c.end() > study_end) {
      c.duration_s = static_cast<std::int32_t>(study_end - c.start);
    }
    if (c.duration_s <= 0) continue;
    // Data loss hits whole reporting chains: either a car's records for a
    // lossy day all survive or they are all gone - that is what makes "the
    // number of cars appear smaller" on those days (S4).
    const auto day = static_cast<std::size_t>(time::day_index(c.start));
    if (day < lossy_day.size() && lossy_day[day]) {
      util::Rng chain_rng = master.split(
          0x1055'0000'0000ULL +
          static_cast<std::uint64_t>(c.car.value) * 1000003ULL + day);
      if (chain_rng.bernoulli(config.data_loss_fraction)) continue;
    }
    dataset.add(c);
  }
  dataset.finalize(pool);

  return Study{config,
               std::move(topology),
               std::move(background),
               std::move(cars),
               std::move(dataset),
               std::move(day_factors)};
}

}  // namespace ccms::sim
