#include "sim/simulator.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "fleet/schedule.h"
#include "util/rng.h"

namespace ccms::sim {

SimConfig SimConfig::paper_default() {
  SimConfig config;
  config.fleet.size = 4000;
  config.topology.grid_width = 40;
  config.topology.grid_height = 40;
  return config;
}

SimConfig SimConfig::quick() {
  SimConfig config;
  config.seed = 7;
  config.study_days = 28;
  config.fleet.size = 300;
  config.topology.grid_width = 12;
  config.topology.grid_height = 12;
  return config;
}

SimConfig SimConfig::pristine() {
  SimConfig config = quick();
  config.gen.hour_artifact_per_trip = 0;
  config.data_loss_days.clear();
  config.data_loss_fraction = 0;
  return config;
}

StreamSim::StreamSim(const SimConfig& config)
    : config_(config),
      master_(config.seed),
      topology_([&] {
        util::Rng topo_rng = master_.split(0x701ULL);
        return net::Topology(config.topology, topo_rng);
      }()),
      background_([&] {
        util::Rng load_rng = master_.split(0x10ADULL);
        return net::BackgroundLoad(topology_, config.load, load_rng);
      }()),
      generator_(topology_, config_.gen),
      study_end_(static_cast<time::Seconds>(config.study_days) *
                 time::kSecondsPerDay) {
  exec::ThreadPool pool(config.threads);
  util::Rng fleet_rng = master_.split(0xF1EE7ULL);
  fleet_ = fleet::build_fleet(topology_, config.fleet, fleet_rng, pool);

  // Global per-day activity factors: slow adoption trend plus day-of-week
  // dependent variability (Friday/Saturday are the noisy days in Table 1).
  util::Rng day_rng = master_.split(0xDA75ULL);
  day_factors_.assign(static_cast<std::size_t>(config.study_days), 1.0);
  for (int d = 0; d < config.study_days; ++d) {
    const auto dow = static_cast<std::size_t>(
        time::weekday(static_cast<time::Seconds>(d) * time::kSecondsPerDay));
    const double noise = day_rng.normal(0.0, config.dow_noise_sigma[dow]);
    day_factors_[static_cast<std::size_t>(d)] =
        std::max(0.2, (1.0 + config.daily_trend * d) * (1.0 + noise));
  }

  lossy_day_.assign(static_cast<std::size_t>(config.study_days), 0);
  for (const int d : config.data_loss_days) {
    if (d >= 0 && d < config.study_days) {
      lossy_day_[static_cast<std::size_t>(d)] = 1;
    }
  }
}

void StreamSim::emit_car(std::size_t i,
                         std::vector<cdr::Connection>& raw_scratch,
                         std::vector<cdr::Connection>& out) const {
  const fleet::CarProfile& car = fleet_[i];
  raw_scratch.clear();
  util::Rng car_rng = master_.split(0xCACA000000ULL + car.id.value);
  for (int day = 0; day < config_.study_days; ++day) {
    const fleet::DayContext ctx{
        day, day_factors_[static_cast<std::size_t>(day)]};
    const std::vector<fleet::Trip> trips =
        fleet::plan_day(car, topology_, ctx, car_rng);
    for (const fleet::Trip& trip : trips) {
      generator_.generate_trip(car, trip, car_rng, raw_scratch);
    }
  }

  // Right-censor at the study boundary (the export window ends), drop
  // records that fall outside entirely, and apply the partial-loss days.
  // Per-record decisions (the loss draw comes from a fresh counter-based
  // stream per (car, day)), so filtering per car here yields exactly the
  // records the whole-trace filter kept.
  for (cdr::Connection c : raw_scratch) {
    if (c.start >= study_end_ || c.end() <= 0) continue;
    if (c.start < 0) {
      c.duration_s = static_cast<std::int32_t>(c.end());
      c.start = 0;
    }
    if (c.end() > study_end_) {
      c.duration_s = static_cast<std::int32_t>(study_end_ - c.start);
    }
    if (c.duration_s <= 0) continue;
    // Data loss hits whole reporting chains: either a car's records for a
    // lossy day all survive or they are all gone - that is what makes "the
    // number of cars appear smaller" on those days (S4).
    const auto day = static_cast<std::size_t>(time::day_index(c.start));
    if (day < lossy_day_.size() && lossy_day_[day]) {
      util::Rng chain_rng = master_.split(
          0x1055'0000'0000ULL +
          static_cast<std::uint64_t>(c.car.value) * 1000003ULL + day);
      if (chain_rng.bernoulli(config_.data_loss_fraction)) continue;
    }
    out.push_back(c);
  }
}

Study StreamSim::into_study(cdr::Dataset raw) && {
  return Study{std::move(config_),
               std::move(topology_),
               std::move(background_),
               std::move(fleet_),
               std::move(raw),
               std::move(day_factors_)};
}

Study simulate(const SimConfig& config) {
  StreamSim sim(config);
  exec::ThreadPool pool(config.threads);

  // Per-car trace generation, parallelized over fixed-size car chunks.
  // Every car's draws come from its own counter-based stream
  // (master.split(tag + car id)), and per-chunk buffers concatenate in car
  // order, so the record sequence below is byte-for-byte the one the
  // sequential loop produced.
  constexpr std::size_t kCarChunk = 32;
  const std::size_t car_count = sim.fleet().size();
  const std::size_t chunk_count = (car_count + kCarChunk - 1) / kCarChunk;
  std::vector<std::vector<cdr::Connection>> chunks(chunk_count);
  pool.parallel_for(chunk_count, [&](std::size_t c) {
    std::vector<cdr::Connection>& out = chunks[c];
    const std::size_t begin = c * kCarChunk;
    const std::size_t end = std::min(car_count, begin + kCarChunk);
    out.reserve((end - begin) *
                static_cast<std::size_t>(config.study_days) * 8);
    std::vector<cdr::Connection> raw_scratch;
    for (std::size_t i = begin; i < end; ++i) {
      sim.emit_car(i, raw_scratch, out);
    }
  });

  cdr::Dataset dataset;
  dataset.set_fleet_size(static_cast<std::uint32_t>(config.fleet.size));
  dataset.set_study_days(config.study_days);
  std::size_t total_records = 0;
  for (const auto& chunk : chunks) total_records += chunk.size();
  dataset.reserve(total_records);
  for (auto& chunk : chunks) {
    dataset.add(chunk);
    chunk.clear();
    chunk.shrink_to_fit();
  }
  dataset.finalize(pool);

  return std::move(sim).into_study(std::move(dataset));
}

}  // namespace ccms::sim
