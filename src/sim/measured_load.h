// Measured cell load: background + the cars' own radio traffic.
//
// The paper's U_PRB telemetry is what the *network* measures, which includes
// the connected cars' transfers. The background model alone misses that
// feedback; this module closes the loop by adding a per-connected-car
// utilisation contribution to each (cell, 15-minute weekly bin), averaged
// over the study:
//
//   u(cell, bin) = clamp(background(cell, bin)
//                        + car_share * avg_concurrent_cars(cell, bin), 0, 1)
//
// With the default share (a car's telemetry/streaming occupies a few percent
// of a cell), the feedback is small — as the paper expects today — but the
// high-concurrency funnel cells of Fig 10/11 visibly ride above their
// background, and the term grows with fleet scale, which is the paper's
// warning about FOTA-era demand.
#pragma once

#include "cdr/dataset.h"
#include "core/concurrency.h"
#include "core/load_view.h"
#include "net/load.h"

namespace ccms::sim {

/// Per-connected-car PRB share while it is on a cell (telemetry + the odd
/// stream, averaged).
inline constexpr double kDefaultCarPrbShare = 0.02;

/// Builds the measured load grid: background plus the fleet's contribution
/// derived from the (cleaned) dataset's concurrency.
[[nodiscard]] core::CellLoad measured_load(const net::BackgroundLoad& background,
                                           const cdr::Dataset& cleaned,
                                           double car_prb_share = kDefaultCarPrbShare);

}  // namespace ccms::sim
