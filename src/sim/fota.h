// The Fig 1 saturation experiment and FOTA download-time estimation.
//
// Fig 1: "Large downloads start at 20:45 UTC in two cells and last for
// 4 hours, consuming nearly all available resources." One greedy device per
// cell absorbs every PRB the background traffic leaves idle; the plotted
// test-day curve pins at ~100% while the cell's average day keeps its
// diurnal shape.
#pragma once

#include <vector>

#include "net/cell.h"
#include "net/load.h"
#include "net/prb.h"

namespace ccms::sim {

/// Start bin of the paper's test: 20:45 (bin 83 of 96).
inline constexpr int kPaperTestStartBin = 83;
/// Duration of the paper's test: 4 hours = 16 fifteen-minute bins.
inline constexpr int kPaperTestBins = 16;

/// Result for one cell of the saturation experiment.
struct SaturationResult {
  CellId cell;
  /// Weekday-average background utilisation per 15-minute bin (96 values) —
  /// the "average" curves of Fig 1.
  std::vector<double> average_day;
  /// Utilisation on the test day with the greedy download active — the
  /// "test" curves of Fig 1.
  std::vector<double> test_day;
  /// Megabytes the greedy flow received over the test window.
  double delivered_mb = 0;
  /// Peak utilisation reached during the test window.
  double peak_utilization = 0;
};

/// Runs the Fig 1 experiment on `cell`: a single greedy download starting at
/// `start_bin` for `duration_bins` bins, against the cell's weekday-average
/// background day.
[[nodiscard]] SaturationResult saturation_experiment(
    const net::BackgroundLoad& background, const net::CellTable& cells,
    CellId cell, int start_bin = kPaperTestStartBin,
    int duration_bins = kPaperTestBins);

/// Picks `count` cells suitable for the experiment: moderately-loaded cells
/// (weekly mean in [lo, hi]) so that the saturation effect is visible, as in
/// the paper's two test cells.
[[nodiscard]] std::vector<CellId> pick_test_cells(
    const net::BackgroundLoad& background, const net::CellTable& cells,
    int count, double lo = 0.35, double hi = 0.65);

/// Seconds needed to push a FOTA image of `megabytes` through `cell`
/// starting at day bin `start_bin` (uses the weekday-average background).
/// Negative if it cannot complete within a week.
[[nodiscard]] double fota_download_seconds(const net::BackgroundLoad& background,
                                           const net::CellTable& cells,
                                           CellId cell, double megabytes,
                                           int start_bin);

/// Weekday-average (Mon-Fri) background day of one cell, 96 bins.
[[nodiscard]] std::vector<double> weekday_average_day(
    const net::BackgroundLoad& background, CellId cell);

// ---------------------------------------------------------------------------
// Managed FOTA campaign planning — the scenario §4.3 sketches:
//   "rare cars would be prioritized over the limited FOTA campaign window,
//    and common cars would be perhaps randomized or scheduled depending on
//    the typical time they connect. In particular, cars that typically
//    appear during busy hours will likely need special treatment."
// ---------------------------------------------------------------------------

/// Delivery policy assigned to one car.
enum class DeliveryPolicy : int {
  kImmediate = 0,           ///< rare car: push whenever it appears
  kRandomizedOffCommute = 1, ///< common non-busy car: evening slot
  kOffPeakWindow = 2,        ///< busy-hour car: strict overnight window
};

/// Short policy name.
[[nodiscard]] const char* name(DeliveryPolicy policy);

/// What the planner needs to know about one car (assembled from the core
/// analyses: days on network, busy-time share, and the home cell).
struct FotaCarInput {
  CarId car;
  int days_on_network = 0;
  double busy_share = 0;  ///< fraction of connected time in busy cells
  CellId home_cell;       ///< cell the overnight download would ride on
};

/// Campaign knobs.
struct CampaignConfig {
  double update_mb = 500;        ///< FOTA image size
  int rare_days = 10;            ///< Table 2's first rare/common boundary
  double busy_share_special = 0.35;  ///< above this, off-peak treatment
  int naive_bin = 76;            ///< 19:00 — the unmanaged baseline start
  int immediate_bin = 68;        ///< 17:00 — typical appearance of rare cars
  int randomized_bin = 86;       ///< 21:30 — post-commute slot
  int offpeak_bin = 8;           ///< 02:00 — the protected window
};

/// Plan for one car.
struct CarPlan {
  CarId car;
  DeliveryPolicy policy = DeliveryPolicy::kRandomizedOffCommute;
  int start_bin = 0;
  /// Estimated download wall time at the chosen start (s); negative if the
  /// home cell is saturated and the download must be deferred.
  double planned_seconds = -1;
  /// Same download started at the naive baseline bin.
  double naive_seconds = -1;
};

/// The whole campaign.
struct CampaignPlan {
  std::vector<CarPlan> cars;
  /// Cars per policy, indexed by DeliveryPolicy.
  std::array<std::size_t, 3> policy_counts{};
  /// Total device-hours of downloading, naive vs planned (finished cars).
  double naive_hours = 0;
  double planned_hours = 0;
  /// Cars whose home cell cannot complete the download within a week.
  std::size_t deferred = 0;

  [[nodiscard]] double saved_fraction() const {
    return naive_hours > 0 ? (naive_hours - planned_hours) / naive_hours : 0;
  }
};

/// Assigns policies and estimates download times for every car.
[[nodiscard]] CampaignPlan plan_campaign(std::span<const FotaCarInput> cars,
                                         const net::BackgroundLoad& background,
                                         const net::CellTable& cells,
                                         const CampaignConfig& config = {});

}  // namespace ccms::sim
