// Study simulation: fleet + topology + 90 days -> CDR dataset.
//
// This replaces the paper's proprietary input (anonymized CDRs of 1M cars on
// a production network) with a synthetic study of identical schema and
// calibrated statistics; see DESIGN.md for the substitution argument.
#pragma once

#include <vector>

#include "cdr/dataset.h"
#include "fleet/car.h"
#include "net/load.h"
#include "net/topology.h"
#include "sim/config.h"

namespace ccms::sim {

/// Everything a simulated study produces. The raw dataset is *uncleaned*:
/// it still contains the 1-hour artifacts, exactly as the paper's §3 input
/// does; run cdr::clean before analysis.
struct Study {
  SimConfig config;
  net::Topology topology;
  net::BackgroundLoad background;
  std::vector<fleet::CarProfile> fleet;
  cdr::Dataset raw;

  /// Per-day global activity factors actually used (for tests/diagnostics).
  std::vector<double> day_factors;
};

/// Runs the full simulation. Deterministic: equal configs give equal
/// studies, bit for bit.
[[nodiscard]] Study simulate(const SimConfig& config);

}  // namespace ccms::sim
