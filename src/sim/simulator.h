// Study simulation: fleet + topology + 90 days -> CDR dataset.
//
// This replaces the paper's proprietary input (anonymized CDRs of 1M cars on
// a production network) with a synthetic study of identical schema and
// calibrated statistics; see DESIGN.md for the substitution argument.
#pragma once

#include <vector>

#include "cdr/dataset.h"
#include "fleet/car.h"
#include "fleet/connection_gen.h"
#include "net/load.h"
#include "net/topology.h"
#include "sim/config.h"
#include "util/rng.h"

namespace ccms::sim {

/// Everything a simulated study produces. The raw dataset is *uncleaned*:
/// it still contains the 1-hour artifacts, exactly as the paper's §3 input
/// does; run cdr::clean before analysis.
struct Study {
  SimConfig config;
  net::Topology topology;
  net::BackgroundLoad background;
  std::vector<fleet::CarProfile> fleet;
  cdr::Dataset raw;

  /// Per-day global activity factors actually used (for tests/diagnostics).
  std::vector<double> day_factors;
};

/// Runs the full simulation. Deterministic: equal configs give equal
/// studies, bit for bit.
[[nodiscard]] Study simulate(const SimConfig& config);

/// The simulation's shared world — topology, background load, fleet and
/// the per-day activity factors — with per-car trace generation on demand.
///
/// simulate() materializes the whole fleet's trace before censoring it;
/// at the paper's scale (1M cars, 90 days) that buffer alone is tens of
/// gigabytes. StreamSim builds the same world once and then emits one
/// car's *surviving* records at a time: emit_car(i) appends exactly the
/// records simulate() would have kept for fleet()[i], in the same order
/// (every car draws from its own counter-based RNG stream, so per-car
/// generation is bitwise independent of every other car). simulate() is
/// a thin chunked loop over emit_car, which is the equivalence proof.
///
/// Not movable: the connection generator holds a reference to the owned
/// topology.
class StreamSim {
 public:
  explicit StreamSim(const SimConfig& config);
  StreamSim(const StreamSim&) = delete;
  StreamSim& operator=(const StreamSim&) = delete;

  [[nodiscard]] const SimConfig& config() const { return config_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] const net::BackgroundLoad& background() const {
    return background_;
  }
  [[nodiscard]] const std::vector<fleet::CarProfile>& fleet() const {
    return fleet_;
  }
  [[nodiscard]] const std::vector<double>& day_factors() const {
    return day_factors_;
  }

  /// Appends car `i`'s censored, loss-filtered records to `out`.
  /// `raw_scratch` is caller-owned generation scratch (cleared here), so
  /// concurrent emit_car calls with distinct scratch/out are safe.
  void emit_car(std::size_t i, std::vector<cdr::Connection>& raw_scratch,
                std::vector<cdr::Connection>& out) const;

  /// Consumes the world into a Study around an externally-built dataset
  /// (simulate()'s tail).
  [[nodiscard]] Study into_study(cdr::Dataset raw) &&;

 private:
  SimConfig config_;
  util::Rng master_;
  net::Topology topology_;
  net::BackgroundLoad background_;
  std::vector<fleet::CarProfile> fleet_;
  std::vector<double> day_factors_;
  std::vector<char> lossy_day_;
  fleet::ConnectionGenerator generator_;
  time::Seconds study_end_ = 0;
};

}  // namespace ccms::sim
