#include "faults/fault_injector.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>

#include "util/csv.h"

namespace ccms::faults {

namespace {

using cdr::Connection;
using cdr::FaultClass;

constexpr std::string_view kBom = "\xEF\xBB\xBF";
constexpr std::int64_t kOverflowValue = 4000000000LL;  // > INT32_MAX

/// The record-level classes in fixed draw order (one uniform draw per
/// record walks this cumulative ladder, so at most one fault per record).
enum class CsvFault : int {
  kNone = -1,
  kTruncated = 0,
  kGarbage,
  kDuplicate,
  kOutOfOrder,
  kHour,
  kSkew,
  kNegative,
  kOverflow,
  kUnknown,
};

std::array<double, 9> ladder(const CsvFaultRates& r) {
  return {r.truncated_line,    r.garbage_field,     r.duplicate_record,
          r.out_of_order,      r.hour_artifact,     r.clock_skew,
          r.negative_duration, r.overflow_duration, r.unknown_cell};
}

CsvFault draw_fault(util::Rng& rng, const CsvFaultRates& rates) {
  const auto steps = ladder(rates);
  double u = rng.uniform();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (u < steps[i]) return static_cast<CsvFault>(i);
    u -= steps[i];
  }
  return CsvFault::kNone;
}

std::optional<Connection> parse_record(std::string_view line) {
  std::vector<std::string> fields;
  try {
    fields = util::split_csv_line(line);
    if (fields.size() < 4) return std::nullopt;
    const std::int64_t car = util::parse_i64(fields[0]);
    const std::int64_t cell = util::parse_i64(fields[1]);
    const std::int64_t start = util::parse_i64(fields[2]);
    const std::int64_t duration = util::parse_i64(fields[3]);
    return Connection{CarId{static_cast<std::uint32_t>(car)},
                      CellId{static_cast<std::uint32_t>(cell)}, start,
                      static_cast<std::int32_t>(duration)};
  } catch (const util::CsvError&) {
    return std::nullopt;
  }
}

std::string format_fields(std::int64_t car, std::int64_t cell,
                          std::int64_t start, std::int64_t duration) {
  return std::to_string(car) + ',' + std::to_string(cell) + ',' +
         std::to_string(start) + ',' + std::to_string(duration);
}

std::string garbage_token(util::Rng& rng) {
  static constexpr char kChars[] = "abcdefgh!@%_";
  const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  std::string out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kChars[static_cast<std::size_t>(
        rng.uniform_int(0, sizeof kChars - 2))]);
  }
  return out;
}

void log_fault(FaultLog& log, FaultClass fault, std::uint64_t offset,
               std::uint64_t record_index) {
  log.faults.push_back(InjectedFault{fault, offset, record_index});
  ++log.counts[static_cast<std::size_t>(fault)];
}

}  // namespace

CsvFaultRates CsvFaultRates::uniform(double total) {
  CsvFaultRates rates;
  const double each = total / 9.0;
  rates.truncated_line = each;
  rates.garbage_field = each;
  rates.duplicate_record = each;
  rates.out_of_order = each;
  rates.hour_artifact = each;
  rates.clock_skew = each;
  rates.negative_duration = each;
  rates.overflow_duration = each;
  rates.unknown_cell = each;
  return rates;
}

double CsvFaultRates::total() const {
  double total = 0;
  for (const double r : ladder(*this)) total += r;
  return total;
}

std::uint64_t FaultLog::ingest_detectable() const {
  std::uint64_t n = 0;
  for (const InjectedFault& f : faults) {
    if (cdr::detected_at_ingest(f.fault)) ++n;
  }
  return n;
}

std::uint64_t FaultLog::first_fatal_offset() const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const InjectedFault& f : faults) {
    if (cdr::detected_at_ingest(f.fault) && f.byte_offset < best) {
      best = f.byte_offset;
    }
  }
  return best;
}

FaultInjector::FaultInjector(std::uint64_t seed, FaultEnv env)
    : rng_(seed), env_(env) {}

FaultInjector::CorruptedCsv FaultInjector::corrupt_csv(
    std::string_view canonical_csv, const CsvFaultRates& rates) {
  // Split into physical lines (canonical exports use bare '\n').
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < canonical_csv.size()) {
    auto eol = canonical_csv.find('\n', pos);
    if (eol == std::string_view::npos) eol = canonical_csv.size();
    lines.push_back(canonical_csv.substr(pos, eol - pos));
    pos = eol + 1;
  }

  // A line to emit, optionally tagged with the fault it carries. The tag
  // sits on the line where the hardened reader *detects* the fault (e.g.
  // the second copy of a duplicate, the displaced half of a swap).
  struct Emitted {
    std::string text;
    FaultClass tag = FaultClass::kCount;
    std::uint64_t record_index = 0;
  };
  std::vector<Emitted> emitted;
  emitted.reserve(lines.size() + 8);

  // Pre-parse the data rows so swap feasibility can be decided.
  std::vector<std::optional<Connection>> parsed(lines.size());
  std::vector<bool> is_data(lines.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty() || line[0] == '#' ||
        line.substr(0, 4) == "car,") {
      continue;
    }
    parsed[i] = parse_record(line);
    is_data[i] = parsed[i].has_value();
  }

  std::uint64_t record_ordinal = 0;
  std::vector<bool> consumed(lines.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (consumed[i]) continue;
    if (!is_data[i]) {
      emitted.push_back(Emitted{std::string(lines[i])});
      continue;
    }
    const Connection rec = *parsed[i];
    const std::uint64_t ordinal = record_ordinal++;
    CsvFault fault = draw_fault(rng_, rates);

    // Feasibility: skip classes the current record/environment cannot make
    // unambiguously detectable.
    switch (fault) {
      case CsvFault::kOutOfOrder: {
        const bool next_ok = i + 1 < lines.size() && is_data[i + 1] &&
                             !consumed[i + 1] &&
                             cdr::ByCarThenStart{}(rec, *parsed[i + 1]);
        if (!next_ok) fault = CsvFault::kNone;
        break;
      }
      case CsvFault::kHour:
        if (rec.duration_s == 3600) fault = CsvFault::kNone;
        break;
      case CsvFault::kSkew:
        if (env_.horizon_s <= 0) fault = CsvFault::kNone;
        break;
      case CsvFault::kUnknown:
        if (env_.cell_universe == 0) fault = CsvFault::kNone;
        break;
      default:
        break;
    }

    switch (fault) {
      case CsvFault::kNone:
        emitted.push_back(Emitted{std::string(lines[i])});
        break;
      case CsvFault::kTruncated: {
        // Keep 1..3 fields: the row still looks like data but is short.
        const int keep = 1 + static_cast<int>(rng_.uniform_int(0, 2));
        std::string_view line = lines[i];
        std::size_t cut = 0;
        int commas = 0;
        while (cut < line.size() && commas < keep) {
          if (line[cut] == ',') ++commas;
          if (commas < keep) ++cut;
        }
        emitted.push_back(Emitted{std::string(line.substr(0, cut)),
                                  FaultClass::kTruncatedLine, ordinal});
        break;
      }
      case CsvFault::kGarbage: {
        std::vector<std::string> fields =
            util::split_csv_line(lines[i]);
        fields[static_cast<std::size_t>(rng_.uniform_int(0, 3))] =
            garbage_token(rng_);
        std::string text = fields[0];
        for (std::size_t f = 1; f < fields.size(); ++f) {
          text += ',';
          text += fields[f];
        }
        emitted.push_back(
            Emitted{std::move(text), FaultClass::kBadField, ordinal});
        break;
      }
      case CsvFault::kDuplicate:
        emitted.push_back(Emitted{std::string(lines[i])});
        emitted.push_back(Emitted{std::string(lines[i]),
                                  FaultClass::kDuplicateRecord, ordinal});
        break;
      case CsvFault::kOutOfOrder:
        // Swap with the successor; detection fires on the displaced row.
        emitted.push_back(Emitted{std::string(lines[i + 1])});
        emitted.push_back(Emitted{std::string(lines[i]),
                                  FaultClass::kOutOfOrderRecord, ordinal});
        consumed[i + 1] = true;
        ++record_ordinal;  // the successor was emitted here
        break;
      case CsvFault::kHour:
        emitted.push_back(Emitted{
            format_fields(rec.car.value, rec.cell.value, rec.start, 3600),
            FaultClass::kHourArtifact, ordinal});
        break;
      case CsvFault::kSkew: {
        const std::int64_t start =
            env_.horizon_s + 3600 + rng_.uniform_int(0, 86399);
        emitted.push_back(Emitted{format_fields(rec.car.value, rec.cell.value,
                                                start, rec.duration_s),
                                  FaultClass::kClockSkew, ordinal});
        break;
      }
      case CsvFault::kNegative: {
        const std::int64_t d = -(1 + rng_.uniform_int(0, 999));
        emitted.push_back(Emitted{
            format_fields(rec.car.value, rec.cell.value, rec.start, d),
            FaultClass::kNegativeDuration, ordinal});
        break;
      }
      case CsvFault::kOverflow:
        emitted.push_back(Emitted{format_fields(rec.car.value, rec.cell.value,
                                                rec.start, kOverflowValue),
                                  FaultClass::kOverflowDuration, ordinal});
        break;
      case CsvFault::kUnknown: {
        const std::int64_t cell =
            env_.cell_universe + rng_.uniform_int(0, 999);
        emitted.push_back(Emitted{
            format_fields(rec.car.value, cell, rec.start, rec.duration_s),
            FaultClass::kUnknownCell, ordinal});
        break;
      }
    }
  }

  for (int b = 0; b < rates.trailing_blank_lines; ++b) {
    emitted.push_back(Emitted{std::string()});
  }

  // Assemble, computing each line's byte offset exactly as the readers do.
  const std::string_view eol = rates.crlf ? "\r\n" : "\n";
  CorruptedCsv out;
  out.text.reserve(canonical_csv.size() + 64);
  if (rates.add_bom) out.text.append(kBom);
  bool first = true;
  for (const Emitted& line : emitted) {
    // Readers treat a leading BOM as part of the first line, so the first
    // line anchors at offset 0 even when a BOM precedes it.
    const std::uint64_t anchor = first ? 0 : out.text.size();
    first = false;
    if (line.tag != FaultClass::kCount) {
      log_fault(out.log, line.tag, anchor, line.record_index);
    }
    out.text.append(line.text);
    out.text.append(eol);
  }
  return out;
}

FaultInjector::CorruptedBinary FaultInjector::corrupt_binary(
    std::string_view ccdr1_bytes, const BinaryFaultPlan& plan) {
  constexpr std::size_t kHeaderSize = 24;
  constexpr std::size_t kRecordSize = 24;
  CorruptedBinary out;
  out.bytes.assign(ccdr1_bytes);

  if (plan.corrupt_magic) {
    if (out.bytes.size() >= 8) {
      out.bytes[2] = static_cast<char>(out.bytes[2] ^ 0x40);
      log_fault(out.log, FaultClass::kBadHeader, 0, 0);
    }
    return out;  // a dead header masks everything else
  }
  if (out.bytes.size() < kHeaderSize) return out;

  std::uint64_t claimed = 0;
  std::memcpy(&claimed, out.bytes.data() + 8, sizeof claimed);

  if (plan.truncate_records > 0) {
    const std::uint64_t have = (out.bytes.size() - kHeaderSize) / kRecordSize;
    const std::uint64_t chop =
        std::min<std::uint64_t>(plan.truncate_records, have);
    out.bytes.resize(out.bytes.size() - chop * kRecordSize);
  }
  if (plan.inflate_record_count) {
    const std::uint64_t inflated =
        claimed + 1 + static_cast<std::uint64_t>(rng_.uniform_int(0, 9999));
    std::memcpy(out.bytes.data() + 8, &inflated, sizeof inflated);
    claimed = inflated;
  }
  const std::uint64_t available =
      (out.bytes.size() - kHeaderSize) / kRecordSize;
  if (claimed > available) {
    // One detection event regardless of how the mismatch was produced.
    log_fault(out.log, FaultClass::kTruncatedPayload, 8, 0);
  }

  const std::uint64_t n = std::min(claimed, available);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t offset = kHeaderSize + i * kRecordSize;
    double u = rng_.uniform();
    if (u < plan.flip_duration_sign) {
      // Little-endian int32 at record offset 16: the sign lives in byte 19.
      out.bytes[offset + 19] = static_cast<char>(
          static_cast<unsigned char>(out.bytes[offset + 19]) | 0x80);
      log_fault(out.log, FaultClass::kNegativeDuration, offset, i);
      continue;
    }
    u -= plan.flip_duration_sign;
    if (u < plan.flip_cell_high_bit && env_.cell_universe > 0) {
      // Little-endian uint32 at record offset 4: top bit in byte 7.
      out.bytes[offset + 7] = static_cast<char>(
          static_cast<unsigned char>(out.bytes[offset + 7]) | 0x80);
      log_fault(out.log, FaultClass::kUnknownCell, offset, i);
    }
  }
  return out;
}

FaultInjector::CorruptedDataset FaultInjector::corrupt_dataset(
    const cdr::Dataset& input, const CsvFaultRates& rates) {
  CorruptedDataset out;
  out.dataset.set_fleet_size(input.fleet_size());
  out.dataset.set_study_days(input.study_days());
  out.dataset.reserve(input.size());

  std::uint64_t index = 0;
  for (Connection c : input.all()) {
    const std::uint64_t ordinal = index++;
    CsvFault fault = draw_fault(rng_, rates);
    switch (fault) {
      // Line-structure classes do not exist inside a Dataset; a finalized
      // Dataset is sorted, so swaps cannot survive either.
      case CsvFault::kTruncated:
      case CsvFault::kGarbage:
      case CsvFault::kOutOfOrder:
        fault = CsvFault::kNone;
        break;
      case CsvFault::kHour:
        if (c.duration_s == 3600) fault = CsvFault::kNone;
        break;
      case CsvFault::kSkew:
        if (env_.horizon_s <= 0) fault = CsvFault::kNone;
        break;
      case CsvFault::kUnknown:
        if (env_.cell_universe == 0) fault = CsvFault::kNone;
        break;
      default:
        break;
    }
    switch (fault) {
      case CsvFault::kDuplicate:
        out.dataset.add(c);
        out.dataset.add(c);
        log_fault(out.log, FaultClass::kDuplicateRecord, ordinal, ordinal);
        continue;
      case CsvFault::kHour:
        c.duration_s = 3600;
        log_fault(out.log, FaultClass::kHourArtifact, ordinal, ordinal);
        break;
      case CsvFault::kSkew:
        c.start = env_.horizon_s + 3600 + rng_.uniform_int(0, 86399);
        log_fault(out.log, FaultClass::kClockSkew, ordinal, ordinal);
        break;
      case CsvFault::kNegative:
        c.duration_s = static_cast<std::int32_t>(-(1 + rng_.uniform_int(0, 999)));
        log_fault(out.log, FaultClass::kNegativeDuration, ordinal, ordinal);
        break;
      case CsvFault::kOverflow:
        c.duration_s = std::numeric_limits<std::int32_t>::max();
        log_fault(out.log, FaultClass::kOverflowDuration, ordinal, ordinal);
        break;
      case CsvFault::kUnknown:
        c.cell = CellId{env_.cell_universe +
                        static_cast<std::uint32_t>(rng_.uniform_int(0, 999))};
        log_fault(out.log, FaultClass::kUnknownCell, ordinal, ordinal);
        break;
      default:
        break;
    }
    out.dataset.add(c);
  }
  out.dataset.finalize();
  return out;
}

FaultInjector::JitteredFeed FaultInjector::jitter_feed(
    std::span<const cdr::Connection> start_sorted_feed,
    const FeedJitter& jitter) {
  // Why the late records are *provably* quarantined and everything else is
  // *provably* not:
  //  - A delayed record y arrives at y.start + delay with delay <= L (the
  //    allowed lateness). Every record z that arrived before it satisfies
  //    z.start <= z.arrival <= y.arrival <= y.start + L, so the watermark
  //    max(z.start) - L <= y.start: y is inside the window.
  //  - A late-flagged record r is scheduled right after a non-flagged
  //    witness x with x.start >= r.start + L + 1. x arrives at most at
  //    x.start + L < r.arrival, so when r arrives the watermark is already
  //    >= x.start - L >= r.start + 1: r is past the window.
  // Quarantined records never advance the watermark, so late records cannot
  // eject one another's witnesses. Records the engine's clean screen removes
  // (see `screened` below) never reach the watermark at all, so they are
  // excluded from both roles.
  const std::size_t n = start_sorted_feed.size();
  const time::Seconds lateness = std::max<time::Seconds>(0,
                                                         jitter.allowed_lateness);
  const time::Seconds max_delay =
      std::clamp<time::Seconds>(jitter.max_delay, 0, lateness);

  // A record the engine's clean screen removes never reaches the watermark:
  // it cannot be quarantined as late, and as a witness it would never
  // advance the watermark past its flagged record's start.
  const auto screened = [&](std::size_t i) {
    const std::int32_t d = start_sorted_feed[i].duration_s;
    return d <= 0 ||
           (jitter.artifact_duration_s > 0 &&
            d == jitter.artifact_duration_s) ||
           (jitter.max_plausible_duration_s > 0 &&
            d > jitter.max_plausible_duration_s);
  };

  // One flag draw + one delay draw per record, unconditionally, so the rng
  // stream (and thus the whole feed) is deterministic per seed.
  std::vector<char> flagged(n, 0);
  std::vector<time::Seconds> delay(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    flagged[i] = rng_.uniform() < jitter.late_rate && !screened(i) ? 1 : 0;
    delay[i] = max_delay > 0 ? rng_.uniform_int(0, max_delay) : 0;
  }

  // Resolve witnesses; records with no usable witness stay on time.
  struct Arrival {
    time::Seconds at = 0;
    std::uint64_t index = 0;
  };
  std::vector<Arrival> order;
  order.reserve(n);
  JitteredFeed out;
  for (std::size_t i = 0; i < n; ++i) {
    const cdr::Connection& r = start_sorted_feed[i];
    time::Seconds at = r.start + delay[i];
    if (flagged[i]) {
      const time::Seconds needed = r.start + lateness + 1;
      auto w = std::lower_bound(
          start_sorted_feed.begin(), start_sorted_feed.end(), needed,
          [](const cdr::Connection& c, time::Seconds t) { return c.start < t; });
      while (w != start_sorted_feed.end() &&
             (flagged[static_cast<std::size_t>(w -
                                               start_sorted_feed.begin())] ||
              screened(static_cast<std::size_t>(w -
                                                start_sorted_feed.begin())))) {
        ++w;
      }
      if (w != start_sorted_feed.end()) {
        at = w->start + max_delay + 1;
        out.late.push_back(r);
      } else {
        flagged[i] = 0;
      }
    }
    order.push_back({at, static_cast<std::uint64_t>(i)});
  }
  std::sort(order.begin(), order.end(), [](const Arrival& a, const Arrival& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.index < b.index;
  });
  out.arrivals.reserve(n);
  for (const Arrival& a : order) {
    out.arrivals.push_back(start_sorted_feed[static_cast<std::size_t>(a.index)]);
  }
  return out;
}

}  // namespace ccms::faults
