// A deterministic at-least-once feed harness: seeded disconnects with
// replay-from-last-acknowledgement, plus lateness-safe reorder bursts.
//
// FlakyFeed models the delivery layer between a CDR export and the
// streaming engine the way a real collection pipeline misbehaves: the
// connection drops and the producer re-sends everything after the last
// acknowledged record (at-least-once → duplicates), and short bursts arrive
// shuffled. It exists to *test* crash tolerance: ccms::stream's exactly-once
// cursors must absorb the duplicates so that a killed-and-restored engine
// replaying through a FlakyFeed converges to the same report as an
// uninterrupted run.
//
// Determinism is the whole design:
//  - The *base delivery order* (input order with reorder bursts applied) is
//    fixed in the constructor from the seed alone. Two feeds built from the
//    same (records, seed, config) produce the same base order, no matter
//    when either is killed, rewound or drained.
//  - Disconnects never invent new orderings: they only rewind the cursor to
//    the last acknowledged position *within* the fixed base order. The
//    post-dedup record sequence is therefore identical for every disconnect
//    and kill pattern — the property the bitwise-parity tests lean on.
//  - Reorder bursts are contiguous, non-overlapping segments whose start
//    span is <= lateness_budget, shuffled and then restored to per-car
//    ascending order. Per-car order preservation keeps the engine's ack
//    cursors sound (per-car delivery keys stay strictly increasing), and
//    the bounded span guarantees no record is quarantined as late by an
//    engine whose allowed_lateness >= lateness_budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cdr/record.h"
#include "util/rng.h"
#include "util/time.h"

namespace ccms::faults {

struct FlakyFeedConfig {
  /// Probability, after each delivery, that the link drops and the feed
  /// rewinds to the last acknowledged position (re-delivering everything
  /// since). 0 disables disconnects.
  double disconnect_rate = 0.0;

  /// Probability that a reorder burst starts at a given base position.
  double reorder_rate = 0.0;

  /// Max records per reorder burst (>= 2 to have any effect).
  int max_burst = 8;

  /// Max start-time span of one reorder burst, seconds. Keep at or below
  /// the consuming engine's allowed_lateness and no reordered record can
  /// fall past its watermark.
  time::Seconds lateness_budget = 300;
};

class FlakyFeed {
 public:
  /// `arrivals` is the intended delivery order (typically
  /// stream::arrival_order of a dataset). The base order is derived here,
  /// once, from `seed`; see the file comment.
  FlakyFeed(std::vector<cdr::Connection> arrivals, std::uint64_t seed,
            FlakyFeedConfig config = {});

  /// True when every base record has been delivered and acknowledged-or-
  /// passed. Disconnects are suppressed at end-of-feed, so a draining loop
  /// terminates.
  [[nodiscard]] bool exhausted() const { return position_ >= base_.size(); }

  /// Delivers the next record (possibly a re-delivery after a disconnect).
  /// Precondition: !exhausted().
  const cdr::Connection& next();

  /// Acknowledges everything delivered so far: a later disconnect or
  /// rewind_to_ack() replays from here.
  void ack() { ack_position_ = position_; }

  /// Rewinds the cursor to an absolute base position — the resume path
  /// after an engine restore (pass the position recorded with the
  /// checkpoint, or an earlier one to force duplicate re-delivery).
  void rewind_to(std::size_t position);

  /// Rewinds to the last acknowledged position (external disconnect).
  void rewind_to_ack() { position_ = ack_position_; }

  [[nodiscard]] std::size_t position() const { return position_; }
  [[nodiscard]] std::size_t acked() const { return ack_position_; }

  /// Total deliveries, including re-deliveries.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  /// Deliveries of records already delivered before (the duplicates an
  /// exactly-once consumer must drop).
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  /// Seeded disconnects that fired.
  [[nodiscard]] std::uint64_t disconnects() const { return disconnects_; }

  /// The fixed base delivery order (input order + reorder bursts).
  [[nodiscard]] const std::vector<cdr::Connection>& base() const {
    return base_;
  }

 private:
  std::vector<cdr::Connection> base_;
  FlakyFeedConfig config_;
  util::Rng delivery_rng_;  ///< disconnect draws (one per delivery)

  std::size_t position_ = 0;
  std::size_t ack_position_ = 0;
  std::size_t high_water_ = 0;  ///< furthest base position ever delivered

  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t disconnects_ = 0;
};

}  // namespace ccms::faults
