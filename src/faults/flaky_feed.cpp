#include "faults/flaky_feed.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace ccms::faults {

namespace {

/// Applies seeded, lateness-safe reorder bursts in place. Segments are
/// contiguous and non-overlapping; each is shuffled and then restored to
/// per-car original order (see flaky_feed.h for why both properties
/// matter).
void apply_reorder_bursts(std::vector<cdr::Connection>& base, util::Rng rng,
                          const FlakyFeedConfig& config) {
  if (config.reorder_rate <= 0 || config.max_burst < 2) return;
  const std::size_t n = base.size();
  std::size_t i = 0;
  while (i + 1 < n) {
    if (!rng.bernoulli(config.reorder_rate)) {
      ++i;
      continue;
    }
    const auto burst = static_cast<std::size_t>(
        rng.uniform_int(2, std::max(2, config.max_burst)));
    // Grow the segment while it stays inside the burst cap and the start
    // span stays inside the lateness budget.
    time::Seconds lo = base[i].start;
    time::Seconds hi = base[i].start;
    std::size_t j = i + 1;
    while (j < n && j - i < burst) {
      const time::Seconds lo2 = std::min(lo, base[j].start);
      const time::Seconds hi2 = std::max(hi, base[j].start);
      if (hi2 - lo2 > config.lateness_budget) break;
      lo = lo2;
      hi = hi2;
      ++j;
    }
    if (j - i >= 2) {
      // Shuffle the segment, then rewrite it so that each car's records
      // reappear in their original relative order: the shuffled sequence
      // decides *which car* occupies each slot, the original order decides
      // which of that car's records.
      std::vector<cdr::Connection> original(base.begin() + static_cast<std::ptrdiff_t>(i),
                                            base.begin() + static_cast<std::ptrdiff_t>(j));
      std::vector<cdr::Connection> shuffled = original;
      rng.shuffle(shuffled);
      std::unordered_map<std::uint32_t, std::vector<std::size_t>> per_car;
      for (std::size_t k = 0; k < original.size(); ++k) {
        per_car[original[k].car.value].push_back(k);
      }
      std::unordered_map<std::uint32_t, std::size_t> cursor;
      for (std::size_t k = 0; k < shuffled.size(); ++k) {
        const std::uint32_t car = shuffled[k].car.value;
        const std::size_t pick = per_car[car][cursor[car]++];
        base[i + k] = original[pick];
      }
    }
    i = j;
  }
}

}  // namespace

FlakyFeed::FlakyFeed(std::vector<cdr::Connection> arrivals, std::uint64_t seed,
                     FlakyFeedConfig config)
    : base_(std::move(arrivals)),
      config_(config),
      delivery_rng_(util::Rng(seed).split(2)) {
  apply_reorder_bursts(base_, util::Rng(seed).split(1), config_);
}

const cdr::Connection& FlakyFeed::next() {
  const std::size_t at = position_;
  const cdr::Connection& record = base_[at];
  ++position_;
  ++delivered_;
  if (at < high_water_) {
    ++duplicates_;
  } else {
    high_water_ = position_;
  }

  // Seeded disconnect: rewind to the last acknowledged position. Suppressed
  // at end-of-feed so a draining loop terminates.
  if (config_.disconnect_rate > 0 && position_ < base_.size() &&
      delivery_rng_.bernoulli(config_.disconnect_rate)) {
    ++disconnects_;
    position_ = ack_position_;
  }
  return record;
}

void FlakyFeed::rewind_to(std::size_t position) {
  position_ = std::min(position, base_.size());
  ack_position_ = std::min(ack_position_, position_);
}

}  // namespace ccms::faults
