// Deterministic fault injection for the CDR ingest pipeline.
//
// Trace-driven testbeds validate a measurement pipeline by replaying
// *realistically degraded* traces. This module produces exactly that: a
// seeded FaultInjector corrupts a canonical CSV stream, a CCDR1 byte buffer
// or an in-memory Dataset with configurable per-class rates of the damage
// the paper's §3 describes (exactly-1-hour artifacts, stuck clocks) and
// worse (truncated lines, bit flips, duplicated and reordered records).
//
// Every injected fault is tagged with its cdr::FaultClass and the byte
// offset where the hardened ingest layer will *detect* it, so tests can
// assert IngestReport counters == injected counts exactly, and that strict
// mode fails at precisely the first fatal offset.
//
// Determinism: equal (seed, input, rates) produce identical corrupted bytes
// and identical fault logs, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cdr/dataset.h"
#include "cdr/integrity.h"
#include "util/rng.h"

namespace ccms::faults {

/// Per-record fault rates for CSV / dataset corruption. At most one fault is
/// applied per record (classes are mutually exclusive by a single uniform
/// draw), which keeps every fault independently detectable.
struct CsvFaultRates {
  double truncated_line = 0;     ///< cut the row below 4 fields
  double garbage_field = 0;      ///< non-numeric bytes inside one field
  double duplicate_record = 0;   ///< emit the row twice
  double out_of_order = 0;       ///< swap the row with its successor
  double hour_artifact = 0;      ///< duration := 3600 (§3 reporting artifact)
  double clock_skew = 0;         ///< start := beyond the study horizon
  double negative_duration = 0;  ///< duration := negative
  double overflow_duration = 0;  ///< duration := beyond int32
  double unknown_cell = 0;       ///< cell := outside the cell universe

  bool add_bom = false;          ///< prepend a UTF-8 BOM (must be tolerated)
  bool crlf = false;             ///< CRLF line endings (must be tolerated)
  int trailing_blank_lines = 0;  ///< append blank lines (must be tolerated)

  /// Every record-level class at `total / 9` so the summed corruption
  /// probability per record is ~`total`.
  [[nodiscard]] static CsvFaultRates uniform(double total);

  [[nodiscard]] double total() const;
};

/// Deterministic corruption plan for a CCDR1 byte buffer. `corrupt_magic`
/// is exclusive: a damaged header stops ingest, so when set the other
/// faults are not applied (the log then holds exactly one kBadHeader).
struct BinaryFaultPlan {
  bool corrupt_magic = false;        ///< bit-flip in the magic -> kBadHeader
  bool inflate_record_count = false; ///< header claims extra records
  std::size_t truncate_records = 0;  ///< chop records off the tail
  double flip_duration_sign = 0;     ///< per-record -> kNegativeDuration
  double flip_cell_high_bit = 0;     ///< per-record -> kUnknownCell
};

/// One injected fault, tagged with where lenient ingest will detect it.
struct InjectedFault {
  cdr::FaultClass fault = cdr::FaultClass::kCount;
  std::uint64_t byte_offset = 0;  ///< detection anchor in the corrupted bytes
  std::uint64_t record_index = 0; ///< ordinal of the source record
};

/// Everything one corruption pass injected.
struct FaultLog {
  std::vector<InjectedFault> faults;
  std::array<std::uint64_t, cdr::kFaultClassCount> counts{};

  [[nodiscard]] std::uint64_t count(cdr::FaultClass fault) const {
    return counts[static_cast<std::size_t>(fault)];
  }
  [[nodiscard]] std::uint64_t total() const { return faults.size(); }

  /// Count of faults the ingest stage itself detects (everything except
  /// kHourArtifact, which surfaces in the clean stage's accounting).
  [[nodiscard]] std::uint64_t ingest_detectable() const;

  /// Byte offset where strict ingest must throw: the smallest detection
  /// anchor among ingest-detectable faults. UINT64_MAX when none.
  [[nodiscard]] std::uint64_t first_fatal_offset() const;
};

/// Study geometry the injector needs to craft *provably detectable* faults;
/// pass the same values the test hands to cdr::IngestOptions.
struct FaultEnv {
  std::int64_t horizon_s = 0;      ///< enables clock-skew injection
  std::uint32_t cell_universe = 0; ///< enables unknown-cell injection
};

/// Seeded corruption engine. One instance may corrupt many inputs; each
/// call draws from the same deterministic stream.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultEnv env = {});

  struct CorruptedCsv {
    std::string text;
    FaultLog log;
  };
  /// Corrupts a canonical CSV export (as produced by cdr::write_csv_text:
  /// metadata line, header line, data rows sorted by (car, start)).
  [[nodiscard]] CorruptedCsv corrupt_csv(std::string_view canonical_csv,
                                         const CsvFaultRates& rates);

  struct CorruptedBinary {
    std::string bytes;
    FaultLog log;
  };
  /// Corrupts a CCDR1 buffer (as produced by cdr::write_binary_buffer).
  [[nodiscard]] CorruptedBinary corrupt_binary(std::string_view ccdr1_bytes,
                                               const BinaryFaultPlan& plan);

  struct CorruptedDataset {
    cdr::Dataset dataset;
    FaultLog log;
  };
  /// Record-level faults applied directly to a Dataset (no line-structure
  /// classes; truncated_line / garbage_field / out_of_order rates are
  /// ignored — a finalized Dataset is sorted by construction). Detection
  /// anchors are record indices, not byte offsets.
  [[nodiscard]] CorruptedDataset corrupt_dataset(const cdr::Dataset& input,
                                                 const CsvFaultRates& rates);

  /// Arrival-order jitter for a streaming feed (ccms::stream).
  struct FeedJitter {
    /// Uniform per-record arrival delay in [0, max_delay] seconds of
    /// stream time. Clamped to allowed_lateness so a merely-delayed record
    /// is *never* past the watermark (see jitter_feed for the argument).
    time::Seconds max_delay = 120;
    /// Fraction of records made provably late instead.
    double late_rate = 0;
    /// The engine's out-of-order window the feed is aimed at.
    time::Seconds allowed_lateness = 300;
    /// The engine's §3 clean-screen thresholds (0 disables each rule).
    /// Screened records — nonpositive durations always, these two when set —
    /// are dropped before the engine's watermark check, so jitter_feed
    /// neither flags them late nor uses them as late-record witnesses: a
    /// screened witness would never advance the watermark, silently letting
    /// its "provably late" record through.
    std::int32_t artifact_duration_s = 0;
    std::int32_t max_plausible_duration_s = 0;
  };
  struct JitteredFeed {
    /// The records in perturbed arrival order.
    std::vector<cdr::Connection> arrivals;
    /// Records guaranteed to be quarantined as kOutOfOrderRecord: each one
    /// is scheduled to arrive just after a witness record whose start is
    /// beyond its watermark window.
    std::vector<cdr::Connection> late;
  };
  /// Perturbs a start-sorted feed into a plausible out-of-order arrival
  /// sequence with an exactly known set of too-late records, so tests can
  /// assert engine.late_records() == late.size() and snapshot parity
  /// against a batch study over (feed minus late). Deterministic per seed.
  [[nodiscard]] JitteredFeed jitter_feed(
      std::span<const cdr::Connection> start_sorted_feed,
      const FeedJitter& jitter);

 private:
  util::Rng rng_;
  FaultEnv env_;
};

}  // namespace ccms::faults
