// Trip -> radio connection generation.
//
// Translates a planned trip into the CDR records the paper's pipeline sees.
// The generative vocabulary comes from how connected cars of this era
// actually used the network (§1, §3):
//   - ignition/telemetry pings: short bursts (the RRC connection lives for
//     the transfer plus the 10-12 s inactivity timeout [Huang et al.]),
//   - infotainment / in-car WiFi streams: long transfers that ride across
//     cells as the car drives, leaving one per-cell record per handover leg,
//   - engine-on idles (remote start, waiting, drive-through): single-cell
//     records of minutes,
//   - stuck records: "some modems tendency to improperly disconnect" (§3) —
//     the radio release is never logged, so durations run into the tens of
//     minutes; the paper mitigates these by truncating at 600 s,
//   - exactly-1-hour artifacts: periodic network reporting records the
//     paper removes in pre-processing.
//
// The mixture weights are calibrated against Fig 9 (per-cell duration CDF:
// median ~105 s, p73 at 600 s, mean 625 s full / 238 s truncated) and Fig 3
// (total connected time ~8% full / ~4% truncated of the study period).
#pragma once

#include <optional>
#include <vector>

#include "cdr/record.h"
#include "fleet/car.h"
#include "fleet/schedule.h"
#include "net/rrc.h"
#include "net/topology.h"
#include "util/rng.h"

namespace ccms::fleet {

/// Tunables of the connection generator (defaults are the calibrated values).
struct GenConfig {
  /// Mean gap between periodic telemetry pings while driving (s).
  double telemetry_interval_s = 800;
  /// Telemetry transfer (data activity) duration: lognormal(median, sigma),
  /// clamped to [1, 60] s. The logged connection adds the RRC inactivity
  /// timeout on top (S3 / Huang et al.).
  double ping_activity_median_s = 7;
  double ping_activity_sigma = 0.6;
  /// RRC inactivity-timer range appended to every data burst.
  net::RrcConfig rrc;
  /// Streaming session length (s), exponential mean, clamped >= 60 s.
  double stream_mean_s = 800;
  /// Seconds a stream may continue after arrival (finishing the song).
  double stream_linger_max_s = 300;
  /// Engine-on idles after arrival (waiting, drive-through, remote climate):
  /// the archetype gives the *expected count* per arrival (Poisson);
  /// duration lognormal(median, sigma) clamped to [30, max].
  double idle_median_s = 700;
  double idle_sigma = 1.0;
  double idle_max_s = 7200;
  /// Remote-start warm-up idle before departure.
  double warmup_prob = 0.40;
  double warmup_median_s = 500;
  double warmup_sigma = 0.8;
  /// Stuck-record duration: uniform [min, max] s.
  double stuck_min_s = 900;
  double stuck_max_s = 6000;
  /// Probability per trip of an exactly-1-hour reporting artifact.
  double hour_artifact_per_trip = 0.012;
  /// Probability of keeping the previous carrier when it is available at the
  /// next station (same-frequency handover preference).
  double carrier_stickiness = 0.9;
  /// Probability that a fresh (re)selection camps on the car's preferred
  /// carrier when deployed, rather than drawing by weight. Camping makes a
  /// car's habitual stations map to the same few cells day after day, which
  /// keeps daily cell coverage below the ever-touched set (Fig 2).
  double camping_prob = 0.75;
  /// Driving speed per geography class {downtown, suburban, highway, rural}
  /// in km/h; with 1.6 km spacing this yields per-cell dwells of ~60-190 s,
  /// the bulk of Fig 9's drive-through legs.
  std::array<double, net::kGeoClassCount> speed_kmh = {28, 40, 80, 62};
  /// Relative jitter on per-station dwell times.
  double dwell_jitter = 0.25;
};

/// Stateless (per-trip) generator; one instance serves the whole fleet.
class ConnectionGenerator {
 public:
  explicit ConnectionGenerator(const net::Topology& topology,
                               const GenConfig& config = {});

  /// Appends all records of `car` caused by `trip` to `out`. `rng` is the
  /// car's own stream. Returns the arrival time (engine off).
  time::Seconds generate_trip(const CarProfile& car, const Trip& trip,
                              util::Rng& rng,
                              std::vector<cdr::Connection>& out) const;

  [[nodiscard]] const GenConfig& config() const { return config_; }

 private:
  /// Picks the serving cell at `station` for a car heading toward `toward`,
  /// with carrier persistence in `current`. Returns nullopt when no
  /// deployed carrier is supported by the modem.
  [[nodiscard]] std::optional<CellId> pick_cell(
      const CarProfile& car, StationId station, net::Position toward,
      std::optional<CarrierId>& current, util::Rng& rng) const;

  /// Per-station traversal dwell in seconds (before jitter).
  [[nodiscard]] double base_dwell_s(StationId station) const;

  const net::Topology& topology_;
  GenConfig config_;
};

}  // namespace ccms::fleet
