#include "fleet/schedule.h"

#include <algorithm>
#include <cmath>

namespace ccms::fleet {

namespace {

constexpr time::Seconds kNominalDwell = 130;  // per-station, for estimates
constexpr time::Seconds kMinTurnaround = 10 * time::kSecondsPerMinute;

/// Picks an errand destination within `radius` grid steps of `near`.
/// With probability `local_prob` the errand stays at the home station
/// (corner-store run within one cell's footprint).
StationId errand_destination(const net::Topology& topo, StationId near,
                             int radius, double local_prob, util::Rng& rng) {
  if (rng.bernoulli(local_prob)) return near;
  const auto c = topo.station_coord(near);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const int dx = static_cast<int>(rng.uniform_int(-radius, radius));
    const int dy = static_cast<int>(rng.uniform_int(-radius, radius));
    if (dx == 0 && dy == 0) continue;
    const StationId dest = topo.station_at({c.ix + dx, c.iy + dy});
    if (dest != near) return dest;
  }
  // Fall back to a neighbouring station.
  return topo.station_at({c.ix + 1, c.iy});
}

}  // namespace

time::Seconds estimate_trip_seconds(const net::Topology& topology,
                                    StationId from, StationId to) {
  const auto a = topology.station_coord(from);
  const auto b = topology.station_coord(to);
  const int dist = std::abs(a.ix - b.ix) + std::abs(a.iy - b.iy);
  return (dist + 1) * kNominalDwell;
}

std::vector<Trip> plan_day(const CarProfile& car,
                           const net::Topology& topology,
                           const DayContext& ctx, util::Rng& rng) {
  std::vector<Trip> trips;
  const ArchetypeSpec& spec = archetype_spec(car.archetype);
  const time::Seconds day_start =
      static_cast<time::Seconds>(ctx.day) * time::kSecondsPerDay;
  const time::Weekday dow = time::weekday(day_start);
  const bool weekend = time::is_weekend(dow);

  const double p_active =
      std::min(1.0, spec.day_activity[static_cast<std::size_t>(dow)] *
                        car.activity_scale * ctx.activity_factor);
  if (!rng.bernoulli(p_active)) return trips;

  auto local_to_ref = [&](time::Seconds local_second_of_day) {
    return day_start + car.to_reference(local_second_of_day);
  };

  if (spec.commutes && !weekend) {
    // Habitual commute with modest jitter; the pm leg gets more spread
    // (meetings, traffic, errands on the way).
    const time::Seconds am =
        local_to_ref(car.depart_am + static_cast<time::Seconds>(
                                         rng.normal(0.0, 12 * 60.0)));
    const time::Seconds pm =
        local_to_ref(car.depart_pm + static_cast<time::Seconds>(
                                         rng.normal(0.0, 25 * 60.0)));
    trips.push_back({am, car.home, car.work});
    trips.push_back({pm, car.work, car.home});

    // Evening errands: short round trips from home.
    const int extras = rng.poisson(spec.extra_trips_weekday);
    for (int e = 0; e < extras; ++e) {
      const StationId dest = errand_destination(
          topology, car.home, spec.errand_radius, spec.local_errand_prob, rng);
      const time::Seconds out = local_to_ref(static_cast<time::Seconds>(
          rng.uniform(18.6 * time::kSecondsPerHour,
                      21.2 * time::kSecondsPerHour)));
      const time::Seconds back =
          out + estimate_trip_seconds(topology, car.home, dest) +
          static_cast<time::Seconds>(
              rng.uniform(15 * 60.0, 75 * 60.0));  // time at destination
      trips.push_back({out, car.home, dest});
      trips.push_back({back, dest, car.home});
    }
  } else {
    // Non-commute day: one or more round trips from home.
    const double extra_mean =
        weekend ? spec.extra_trips_weekend : spec.extra_trips_weekday;
    const int rounds = 1 + rng.poisson(extra_mean);
    for (int r = 0; r < rounds; ++r) {
      const StationId dest = errand_destination(
          topology, car.home, spec.errand_radius, spec.local_errand_prob, rng);
      const time::Seconds out = local_to_ref(static_cast<time::Seconds>(
          rng.uniform(8.5 * time::kSecondsPerHour,
                      19.5 * time::kSecondsPerHour)));
      const time::Seconds back =
          out + estimate_trip_seconds(topology, car.home, dest) +
          static_cast<time::Seconds>(rng.uniform(20 * 60.0, 150 * 60.0));
      trips.push_back({out, car.home, dest});
      trips.push_back({back, dest, car.home});
    }
  }

  // Order by departure and enforce spacing: a trip cannot depart before the
  // previous one has plausibly arrived plus a minimal turnaround.
  std::sort(trips.begin(), trips.end(),
            [](const Trip& a, const Trip& b) { return a.depart < b.depart; });
  std::vector<Trip> spaced;
  spaced.reserve(trips.size());
  time::Seconds earliest = day_start;
  for (Trip t : trips) {
    if (t.depart < earliest) t.depart = earliest;
    spaced.push_back(t);
    earliest = t.depart + estimate_trip_seconds(topology, t.from, t.to) +
               kMinTurnaround;
  }
  return spaced;
}

}  // namespace ccms::fleet
