// Car behaviour archetypes.
//
// The paper's population exhibits a spectrum of behaviours: Fig 5 shows a
// strict weekday commuter, a heavy all-week user and a weekend-skewed car;
// Fig 6's days-on-network histogram has a mass of rarely-seen cars (<= 10
// days), a dip, and a rising bulk past 30 days; Table 1's presence is ~79% on
// weekdays and ~67-70% on weekends. We generate that spectrum from five
// archetypes whose shares and daily-activity probabilities are calibrated to
// those aggregate targets (see DESIGN.md §5).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ccms::fleet {

/// The behavioural classes the synthetic fleet is drawn from.
enum class Archetype : std::uint8_t {
  kRegularCommuter = 0,  ///< strict Mon-Fri home->work->home (Fig 5 right)
  kFlexCommuter = 1,     ///< commutes most weekdays, variable hours
  kWeekendDriver = 2,    ///< weekday-quiet, weekend-active
  kHeavyUser = 3,        ///< many trips every day (Fig 5 middle)
  kRareDriver = 4,       ///< on the network only a handful of days (Fig 6 head)
};

inline constexpr int kArchetypeCount = 5;

/// Static parameters of one archetype.
struct ArchetypeSpec {
  Archetype archetype;
  const char* name;
  /// Fraction of the fleet.
  double population_share;
  /// Probability of making at least one trip on each weekday (Mon..Sun),
  /// before the per-car activity scale and the global day factor.
  std::array<double, 7> day_activity;
  /// Whether the car has a fixed home->work commute on active weekdays.
  bool commutes;
  /// Poisson mean of extra (non-commute) round trips on an active weekday /
  /// weekend day.
  double extra_trips_weekday;
  double extra_trips_weekend;
  /// Probability a trip carries an in-car WiFi / infotainment stream
  /// (produces multi-cell connection legs and thus handovers).
  double hotspot_prob;
  /// Probability of a parked engine-on idle connection after arriving.
  double idle_per_arrival;
  /// Probability of a stuck (improperly non-disconnecting) record after a
  /// trip, before the per-car stuck multiplier.
  double stuck_per_arrival;
  /// Chebyshev radius (in grid steps) of errand destinations.
  int errand_radius;
  /// Probability an errand stays at the home station (corner-store runs):
  /// the whole trip lives in one cell's footprint.
  double local_errand_prob;
  /// Range of the per-car activity scale, drawn uniformly per car.
  double activity_scale_min;
  double activity_scale_max;
};

/// The five-archetype catalogue (index = static_cast<int>(Archetype)).
[[nodiscard]] std::span<const ArchetypeSpec, kArchetypeCount>
archetype_catalogue();

/// Spec of one archetype.
[[nodiscard]] const ArchetypeSpec& archetype_spec(Archetype a);

/// Short name ("regular-commuter", ...).
[[nodiscard]] const char* name(Archetype a);

}  // namespace ccms::fleet
