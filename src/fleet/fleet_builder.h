// Fleet construction: draw per-car profiles from the archetype catalogue
// and place homes/workplaces on the topology.
#pragma once

#include <vector>

#include "fleet/car.h"
#include "net/topology.h"
#include "util/rng.h"

namespace ccms::exec {
class ThreadPool;
}

namespace ccms::fleet {

/// Knobs of fleet construction.
struct FleetConfig {
  int size = 2000;
  /// Class weights for home placement {downtown, suburban, highway, rural}.
  std::array<double, net::kGeoClassCount> home_class_weights = {0.07, 0.60,
                                                                0.08, 0.25};
  /// Class weights for commuter workplaces.
  std::array<double, net::kGeoClassCount> work_class_weights = {0.55, 0.35,
                                                                0.10, 0.00};
  /// Log-space sigma of the per-car stuck multiplier.
  double stuck_sigma = 0.6;

  /// Population share per time zone offset, from the reference zone going
  /// west (offsets 0, -1, -2, -3 hours — the ET/CT/MT/PT split of a US
  /// national fleet). The default keeps everything in one zone; enable the
  /// spread to exercise the paper's "rendered in respective local times"
  /// handling of the 24x7 matrices.
  std::array<double, 4> timezone_shares = {1.0, 0.0, 0.0, 0.0};
};

/// Builds `config.size` car profiles. Deterministic given `rng`.
/// Archetypes are assigned by quota (exact shares, shuffled), so small fleets
/// still contain every archetype in the intended proportion.
[[nodiscard]] std::vector<CarProfile> build_fleet(const net::Topology& topology,
                                                  const FleetConfig& config,
                                                  util::Rng& rng);

/// Parallel variant: per-car profiles draw from counter-based RNG streams
/// (`rng.split(tag + car id)`), so each car's profile is independent of
/// every other car's draws and slot i can be filled by any thread. Output
/// is bitwise identical to the sequential overload for every pool width.
[[nodiscard]] std::vector<CarProfile> build_fleet(const net::Topology& topology,
                                                  const FleetConfig& config,
                                                  util::Rng& rng,
                                                  exec::ThreadPool& pool);

/// Counts per archetype in a fleet (diagnostics / tests).
[[nodiscard]] std::array<std::size_t, kArchetypeCount> archetype_counts(
    const std::vector<CarProfile>& fleet);

}  // namespace ccms::fleet
