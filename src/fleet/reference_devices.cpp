#include "fleet/reference_devices.h"

#include <algorithm>

#include "net/carrier.h"

namespace ccms::fleet {

namespace {

/// Picks the cell at `station` for a stationary device: a fixed sector
/// (devices do not move, so they camp on one antenna) and a carrier drawn
/// by the usual preference weights among deployed ones.
std::optional<CellId> stationary_cell(const net::Topology& topology,
                                      StationId station, util::Rng& rng) {
  const auto deployed = topology.carriers_at(station);
  if (deployed.empty()) return std::nullopt;
  std::array<double, net::kCarrierCount> weights{};
  for (const CarrierId c : deployed) {
    weights[c.value] = net::carrier_spec(c).selection_weight;
  }
  const auto carrier =
      CarrierId{static_cast<std::uint8_t>(rng.categorical(weights))};
  const auto sector =
      SectorId{static_cast<std::uint8_t>(rng.uniform_int(0, 2))};
  return topology.cell_at(station, sector, carrier);
}

StationId random_station(const net::Topology& topology, util::Rng& rng) {
  return StationId{static_cast<std::uint32_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(topology.station_count()) - 1))};
}

}  // namespace

std::vector<cdr::Connection> generate_smartphones(
    const net::Topology& topology, const SmartphoneConfig& config,
    util::Rng& rng) {
  std::vector<cdr::Connection> records;
  const time::Seconds study_end =
      static_cast<time::Seconds>(config.study_days) * time::kSecondsPerDay;

  for (int device = 0; device < config.count; ++device) {
    util::Rng dev_rng = rng.split(0x5A127'0000ULL + static_cast<std::uint64_t>(device));
    const StationId home = random_station(topology, dev_rng);
    const StationId work = random_station(topology, dev_rng);
    const auto home_cell = stationary_cell(topology, home, dev_rng);
    const auto work_cell = stationary_cell(topology, work, dev_rng);
    if (!home_cell.has_value()) continue;

    for (int day = 0; day < config.study_days; ++day) {
      const time::Seconds day_start =
          static_cast<time::Seconds>(day) * time::kSecondsPerDay;
      const bool workday =
          !time::is_weekend(time::weekday(day_start)) && work_cell.has_value();

      // Sessions over the waking window.
      time::Seconds t =
          day_start + config.wake_hour * time::kSecondsPerHour +
          static_cast<time::Seconds>(
              dev_rng.exponential(3600.0 / config.sessions_per_hour));
      const time::Seconds sleep =
          day_start + config.sleep_hour * time::kSecondsPerHour;
      while (t < sleep && t < study_end) {
        const int hour = time::hour_of_day(t);
        // 9-17 on workdays: at work; otherwise at home. (Commute transit
        // is negligible session-wise for phones: 2 of ~40 sessions.)
        const CellId cell =
            (workday && hour >= 9 && hour < 17) ? *work_cell : *home_cell;
        const double duration = std::clamp(
            dev_rng.lognormal_median(config.session_median_s,
                                     config.session_sigma),
            4.0, 7200.0);
        cdr::Connection c;
        c.car = CarId{static_cast<std::uint32_t>(device)};
        c.cell = cell;
        c.start = t;
        c.duration_s = static_cast<std::int32_t>(duration);
        if (c.end() <= study_end) records.push_back(c);
        t += static_cast<time::Seconds>(
                 duration +
                 dev_rng.exponential(3600.0 / config.sessions_per_hour));
      }
    }
  }
  return records;
}

std::vector<cdr::Connection> generate_iot_meters(const net::Topology& topology,
                                                 const IotMeterConfig& config,
                                                 util::Rng& rng) {
  std::vector<cdr::Connection> records;
  const time::Seconds study_end =
      static_cast<time::Seconds>(config.study_days) * time::kSecondsPerDay;

  for (int device = 0; device < config.count; ++device) {
    util::Rng dev_rng = rng.split(0x107'0000ULL + static_cast<std::uint64_t>(device));
    const auto cell =
        stationary_cell(topology, random_station(topology, dev_rng), dev_rng);
    if (!cell.has_value()) continue;

    // Fixed reporting phase per device, spread across the day.
    const double period_s = 86400.0 / std::max(0.1, config.reports_per_day);
    time::Seconds t = static_cast<time::Seconds>(
        dev_rng.uniform(0.0, period_s));
    while (t < study_end) {
      cdr::Connection c;
      c.car = CarId{static_cast<std::uint32_t>(device)};
      c.cell = *cell;
      c.start = t;
      c.duration_s = static_cast<std::int32_t>(
          dev_rng.uniform(config.report_min_s, config.report_max_s));
      if (c.end() <= study_end) records.push_back(c);
      // Mild jitter around the fixed period.
      t += static_cast<time::Seconds>(period_s *
                                      dev_rng.uniform(0.85, 1.15));
    }
  }
  return records;
}

}  // namespace ccms::fleet
