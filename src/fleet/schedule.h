// Daily trip planning.
//
// §3: "the cars from this OEM can connect to the network only when the
// engine is running, so connections correlate to car usage and driving."
// Trips are therefore the root of everything: a car with no trips on a day
// produces no records that day (Fig 2/6/Table 1), and trip times place the
// records in the day (Figs 4/5/8/10).
#pragma once

#include <vector>

#include "fleet/car.h"
#include "net/topology.h"
#include "util/rng.h"

namespace ccms::fleet {

/// One planned drive from one station to another.
struct Trip {
  time::Seconds depart = 0;  ///< study (reference) time of ignition
  StationId from;
  StationId to;
};

/// Per-day global context supplied by the simulator.
struct DayContext {
  int day = 0;
  /// Global multiplicative factor on activity probabilities for this day:
  /// carries Fig 2's slow upward trend and the Friday/Saturday variability
  /// of Table 1.
  double activity_factor = 1.0;
};

/// Plans all trips of `car` on `ctx.day`. Returns an empty vector on
/// inactive days. Trips are sorted by departure and spaced so a trip never
/// departs before the previous one has plausibly arrived.
[[nodiscard]] std::vector<Trip> plan_day(const CarProfile& car,
                                         const net::Topology& topology,
                                         const DayContext& ctx,
                                         util::Rng& rng);

/// Rough driving duration estimate used for spacing trips (seconds): the
/// grid distance times a nominal per-station dwell.
[[nodiscard]] time::Seconds estimate_trip_seconds(const net::Topology& topology,
                                                  StationId from, StationId to);

}  // namespace ccms::fleet
