#include "fleet/fleet_builder.h"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.h"

namespace ccms::fleet {

namespace {

/// Station lists per geography class.
std::array<std::vector<StationId>, net::kGeoClassCount> stations_by_class(
    const net::Topology& topology) {
  std::array<std::vector<StationId>, net::kGeoClassCount> by_class;
  for (std::uint32_t s = 0; s < topology.station_count(); ++s) {
    const StationId id{s};
    by_class[static_cast<std::size_t>(topology.station_class(id))].push_back(
        id);
  }
  return by_class;
}

StationId sample_station(
    const std::array<std::vector<StationId>, net::kGeoClassCount>& by_class,
    std::span<const double> class_weights, util::Rng& rng) {
  // Zero out weights of empty classes, then draw.
  std::array<double, net::kGeoClassCount> w{};
  for (int g = 0; g < net::kGeoClassCount; ++g) {
    w[static_cast<std::size_t>(g)] =
        by_class[static_cast<std::size_t>(g)].empty()
            ? 0.0
            : class_weights[static_cast<std::size_t>(g)];
  }
  const auto g = rng.categorical(w);
  const auto& list = by_class[g];
  return list[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(list.size()) - 1))];
}

int chebyshev(const net::Topology& topo, StationId a, StationId b) {
  const auto ca = topo.station_coord(a);
  const auto cb = topo.station_coord(b);
  return std::max(std::abs(ca.ix - cb.ix), std::abs(ca.iy - cb.iy));
}

/// One car's profile. Every draw comes from the car's own counter-based
/// stream (`rng.split(0xCA500000 + i)`), so profiles are independent of
/// build order — the property the parallel builder relies on.
CarProfile make_car(
    std::size_t i, Archetype archetype, const net::Topology& topology,
    const FleetConfig& config,
    const std::array<std::vector<StationId>, net::kGeoClassCount>& by_class,
    std::span<const net::CarrierSpec> carrier_specs, const util::Rng& rng) {
  util::Rng car_rng = rng.split(0xCA500000ULL + i);
  CarProfile car;
  car.id = CarId{static_cast<std::uint32_t>(i)};
  car.archetype = archetype;
  const ArchetypeSpec& spec = archetype_spec(car.archetype);

  car.home = sample_station(by_class, config.home_class_weights, car_rng);
  car.work = car.home;
  if (spec.commutes) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      car.work = sample_station(by_class, config.work_class_weights, car_rng);
      const int d = chebyshev(topology, car.home, car.work);
      if (d >= 2 && d <= 11) break;
    }
  }

  car.depart_am = static_cast<time::Seconds>(car_rng.uniform(
      6.4 * time::kSecondsPerHour, 9.0 * time::kSecondsPerHour));
  car.depart_pm = static_cast<time::Seconds>(car_rng.uniform(
      15.5 * time::kSecondsPerHour, 18.5 * time::kSecondsPerHour));

  car.activity_scale =
      car_rng.uniform(spec.activity_scale_min, spec.activity_scale_max);
  car.stuck_multiplier =
      std::min(2.0, std::exp(config.stuck_sigma * car_rng.normal()));

  bool any = false;
  for (const net::CarrierSpec& cs : carrier_specs) {
    const bool supported = car_rng.bernoulli(cs.modem_support_fraction);
    car.carrier_support[cs.id.value] = supported;
    any = any || supported;
  }
  if (!car.carrier_support[0] && !car.carrier_support[2]) {
    // Every modem of this OEM ships with at least the C1+C3 baseline.
    car.carrier_support[0] = true;
    car.carrier_support[2] = true;
  }
  (void)any;

  // Camping preference among supported carriers, by selection weight.
  std::array<double, net::kCarrierCount> pref_weights{};
  for (const net::CarrierSpec& cs : carrier_specs) {
    if (car.carrier_support[cs.id.value]) {
      pref_weights[cs.id.value] = cs.selection_weight;
    }
  }
  car.preferred_carrier =
      CarrierId{static_cast<std::uint8_t>(car_rng.categorical(pref_weights))};

  car.tz_offset_hours =
      -static_cast<int>(car_rng.categorical(config.timezone_shares));
  return car;
}

std::vector<CarProfile> build_fleet_impl(const net::Topology& topology,
                                         const FleetConfig& config,
                                         util::Rng& rng,
                                         exec::ThreadPool* pool) {
  const auto by_class = stations_by_class(topology);
  const auto catalogue = archetype_catalogue();

  // Exact-quota archetype assignment, then shuffled so car id carries no
  // information about behaviour (ids are "anonymized", like the paper's).
  std::vector<Archetype> assignment;
  assignment.reserve(static_cast<std::size_t>(config.size));
  for (const ArchetypeSpec& spec : catalogue) {
    const auto quota = static_cast<std::size_t>(
        std::llround(spec.population_share * config.size));
    for (std::size_t i = 0; i < quota && assignment.size() <
                                             static_cast<std::size_t>(config.size);
         ++i) {
      assignment.push_back(spec.archetype);
    }
  }
  while (assignment.size() < static_cast<std::size_t>(config.size)) {
    assignment.push_back(Archetype::kRegularCommuter);
  }
  rng.shuffle(assignment);

  const auto carrier_specs = net::carrier_catalogue();
  std::vector<CarProfile> fleet(assignment.size());
  if (pool != nullptr && !fleet.empty()) {
    constexpr std::size_t kCarChunk = 64;
    const std::size_t chunks = (fleet.size() + kCarChunk - 1) / kCarChunk;
    pool->parallel_for(chunks, [&](std::size_t c) {
      const std::size_t begin = c * kCarChunk;
      const std::size_t end = std::min(fleet.size(), begin + kCarChunk);
      for (std::size_t i = begin; i < end; ++i) {
        fleet[i] = make_car(i, assignment[i], topology, config, by_class,
                            carrier_specs, rng);
      }
    });
  } else {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      fleet[i] = make_car(i, assignment[i], topology, config, by_class,
                          carrier_specs, rng);
    }
  }
  return fleet;
}

}  // namespace

std::vector<CarProfile> build_fleet(const net::Topology& topology,
                                    const FleetConfig& config,
                                    util::Rng& rng) {
  return build_fleet_impl(topology, config, rng, nullptr);
}

std::vector<CarProfile> build_fleet(const net::Topology& topology,
                                    const FleetConfig& config, util::Rng& rng,
                                    exec::ThreadPool& pool) {
  return build_fleet_impl(topology, config, rng, &pool);
}

std::array<std::size_t, kArchetypeCount> archetype_counts(
    const std::vector<CarProfile>& fleet) {
  std::array<std::size_t, kArchetypeCount> counts{};
  for (const CarProfile& car : fleet) {
    ++counts[static_cast<std::size_t>(car.archetype)];
  }
  return counts;
}

}  // namespace ccms::fleet
