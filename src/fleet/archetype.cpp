#include "fleet/archetype.h"

namespace ccms::fleet {

namespace {

// day_activity is Mon..Sun. Shares sum to 1. Calibration notes:
//  - weekday presence target ~78-80% of the fleet (Table 1),
//  - Saturday ~70.3%, Sunday ~67.4%,
//  - rare drivers' activity scale spreads them over Fig 6's <=30-day head.
constexpr std::array<ArchetypeSpec, kArchetypeCount> kCatalogue = {{
    {Archetype::kRegularCommuter, "regular-commuter", 0.45,
     {0.97, 0.97, 0.97, 0.97, 0.95, 0.72, 0.68},
     /*commutes=*/true, /*extra_wd=*/0.25, /*extra_we=*/1.1,
     /*hotspot=*/0.75, /*idle=*/0.70, /*stuck=*/0.72,
     /*errand_radius=*/3, /*local=*/0.10, 1.0, 1.0},
    {Archetype::kFlexCommuter, "flex-commuter", 0.25,
     {0.85, 0.88, 0.90, 0.88, 0.86, 0.70, 0.66},
     /*commutes=*/true, /*extra_wd=*/0.6, /*extra_we=*/1.2,
     /*hotspot=*/0.70, /*idle=*/0.70, /*stuck=*/0.72,
     /*errand_radius=*/3, /*local=*/0.10, 0.92, 1.0},
    {Archetype::kWeekendDriver, "weekend-driver", 0.12,
     {0.32, 0.32, 0.35, 0.35, 0.45, 0.88, 0.85},
     /*commutes=*/false, /*extra_wd=*/0.3, /*extra_we=*/1.2,
     /*hotspot=*/0.63, /*idle=*/0.68, /*stuck=*/0.66,
     /*errand_radius=*/5, /*local=*/0.15, 0.95, 1.0},
    {Archetype::kHeavyUser, "heavy-user", 0.08,
     {0.99, 0.99, 0.99, 0.99, 0.99, 0.97, 0.95},
     /*commutes=*/false, /*extra_wd=*/4.0, /*extra_we=*/3.5,
     /*hotspot=*/0.80, /*idle=*/0.78, /*stuck=*/0.74,
     /*errand_radius=*/6, /*local=*/0.10, 1.0, 1.0},
    {Archetype::kRareDriver, "rare-driver", 0.10,
     {1.00, 1.00, 1.00, 1.00, 1.05, 0.90, 0.80},
     /*commutes=*/false, /*extra_wd=*/0.2, /*extra_we=*/0.4,
     /*hotspot=*/0.57, /*idle=*/0.64, /*stuck=*/0.62,
     /*errand_radius=*/3, /*local=*/0.40, 0.06, 0.33},
}};

}  // namespace

std::span<const ArchetypeSpec, kArchetypeCount> archetype_catalogue() {
  return kCatalogue;
}

const ArchetypeSpec& archetype_spec(Archetype a) {
  return kCatalogue[static_cast<std::size_t>(a)];
}

const char* name(Archetype a) { return archetype_spec(a).name; }

}  // namespace ccms::fleet
