#include "fleet/connection_gen.h"

#include <algorithm>
#include <cmath>

namespace ccms::fleet {

namespace {

double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

ConnectionGenerator::ConnectionGenerator(const net::Topology& topology,
                                         const GenConfig& config)
    : topology_(topology), config_(config) {}

double ConnectionGenerator::base_dwell_s(StationId station) const {
  const auto g = static_cast<std::size_t>(topology_.station_class(station));
  const double speed = std::max(5.0, config_.speed_kmh[g]);
  return topology_.config().spacing_km / speed * 3600.0;
}

std::optional<CellId> ConnectionGenerator::pick_cell(
    const CarProfile& car, StationId station, net::Position toward,
    std::optional<CarrierId>& current, util::Rng& rng) const {
  const SectorId sector = topology_.sector_towards(station, toward);

  // Carrier persistence: LTE prefers same-frequency handover, so keep the
  // current carrier when it is deployed at the new station.
  if (current.has_value() && car.carrier_support[current->value] &&
      rng.bernoulli(config_.carrier_stickiness)) {
    if (auto cell = topology_.cell_at(station, sector, *current)) {
      return cell;
    }
  }

  // (Re)select among deployed & supported carriers: camp on the modem's
  // preferred band when available, otherwise draw by preference weight.
  const auto deployed = topology_.carriers_at(station);
  std::array<double, net::kCarrierCount> weights{};
  bool any = false;
  bool preferred_here = false;
  for (const CarrierId c : deployed) {
    if (!car.carrier_support[c.value]) continue;
    weights[c.value] = net::carrier_spec(c).selection_weight;
    any = true;
    preferred_here = preferred_here || c == car.preferred_carrier;
  }
  if (!any) return std::nullopt;
  if (preferred_here && rng.bernoulli(config_.camping_prob)) {
    current = car.preferred_carrier;
    return topology_.cell_at(station, sector, car.preferred_carrier);
  }

  const auto chosen = static_cast<std::uint8_t>(rng.categorical(weights));
  current = CarrierId{chosen};
  return topology_.cell_at(station, sector, CarrierId{chosen});
}

time::Seconds ConnectionGenerator::generate_trip(
    const CarProfile& car, const Trip& trip, util::Rng& rng,
    std::vector<cdr::Connection>& out) const {
  const std::vector<StationId> route = topology_.route(trip.from, trip.to);
  const std::size_t n = route.size();

  // Entry time at each station along the route; the last station is the
  // destination (the car parks there).
  std::vector<time::Seconds> enter(n);
  enter[0] = trip.depart;
  for (std::size_t i = 1; i < n; ++i) {
    const double dwell =
        base_dwell_s(route[i - 1]) *
        (1.0 + config_.dwell_jitter * (2.0 * rng.uniform() - 1.0));
    enter[i] = enter[i - 1] + static_cast<time::Seconds>(std::max(20.0, dwell));
  }
  const time::Seconds arrival = enter[n - 1];

  // Direction the antenna sees the car from: the next station on the route,
  // or (at the destination) the previous one.
  auto toward_of = [&](std::size_t i) -> net::Position {
    if (i + 1 < n) return topology_.station_position(route[i + 1]);
    if (n >= 2) return topology_.station_position(route[n - 2]);
    // Single-station route: a fixed per-car bearing.
    net::Position p = topology_.station_position(route[i]);
    p.x += (car.id.value % 2 == 0) ? 0.5 : -0.5;
    p.y += (car.id.value % 3 == 0) ? 0.5 : -0.5;
    return p;
  };

  auto station_index_at = [&](time::Seconds t) -> std::size_t {
    // Last station whose entry time is <= t.
    std::size_t i = 0;
    while (i + 1 < n && enter[i + 1] <= t) ++i;
    return i;
  };

  std::optional<CarrierId> carrier;

  auto emit = [&](std::size_t station_idx, time::Seconds start,
                  double duration_s) {
    const auto cell =
        pick_cell(car, route[station_idx], toward_of(station_idx), carrier, rng);
    if (!cell.has_value()) return;
    cdr::Connection c;
    c.car = car.id;
    c.cell = *cell;
    c.start = start;
    c.duration_s = static_cast<std::int32_t>(duration_s);
    out.push_back(c);
  };

  // A ping's logged duration = the transfer itself + the RRC inactivity
  // timeout that keeps the connection up afterwards.
  auto ping_duration = [&]() {
    const double activity =
        clamp(rng.lognormal_median(config_.ping_activity_median_s,
                                   config_.ping_activity_sigma),
              1.0, 60.0);
    return activity + rng.uniform(config_.rrc.timeout_min_s,
                                  config_.rrc.timeout_max_s);
  };

  // 0. Remote-start warm-up idle at the origin, before departure.
  if (rng.bernoulli(config_.warmup_prob)) {
    const double dur = clamp(
        rng.lognormal_median(config_.warmup_median_s, config_.warmup_sigma),
        30.0, config_.idle_max_s);
    const auto lead = static_cast<time::Seconds>(rng.uniform(30.0, 240.0));
    emit(0, trip.depart - lead - static_cast<time::Seconds>(dur), dur);
  }

  // 1. Ignition ping at departure.
  emit(0, trip.depart, ping_duration());

  // 2. Periodic telemetry pings while driving. Sparse: cars "often do not
  // connect to every cell they traverse, unless there is an immediate
  // request to transfer data" (S4.5), so most of a journey's records come
  // from data bursts (streams), not keep-alives.
  time::Seconds t = trip.depart + static_cast<time::Seconds>(
                                      rng.exponential(config_.telemetry_interval_s));
  while (t < arrival) {
    emit(station_index_at(t), t, ping_duration());
    t += static_cast<time::Seconds>(
        std::max(120.0, rng.exponential(config_.telemetry_interval_s)));
  }

  // 3. Infotainment / WiFi-hotspot stream across cells.
  const double hotspot_prob = archetype_spec(car.archetype).hotspot_prob;
  if (n >= 2 && rng.bernoulli(hotspot_prob)) {
    const auto span = static_cast<double>(arrival - trip.depart);
    const time::Seconds s0 =
        trip.depart + static_cast<time::Seconds>(rng.uniform(0.0, 0.3 * span));
    const double stream_len =
        std::max(60.0, rng.exponential(config_.stream_mean_s));
    const time::Seconds s1 = std::min<time::Seconds>(
        s0 + static_cast<time::Seconds>(stream_len),
        arrival +
            static_cast<time::Seconds>(
                rng.uniform(0.0, config_.stream_linger_max_s)));
    // One leg per station the stream rides across.
    std::size_t i = station_index_at(s0);
    time::Seconds leg_start = s0;
    while (leg_start < s1) {
      const time::Seconds leg_end =
          (i + 1 < n && enter[i + 1] < s1) ? enter[i + 1] : s1;
      if (leg_end > leg_start) {
        emit(i, leg_start, static_cast<double>(leg_end - leg_start));
      }
      leg_start = leg_end;
      if (i + 1 < n && leg_start >= enter[i + 1]) ++i;
      if (leg_end == s1) break;
    }
  }

  // 4. Engine-on idles after arrival (waiting, remote climate,
  // drive-through). The archetype rate is the expected count.
  const int idles =
      rng.poisson(archetype_spec(car.archetype).idle_per_arrival);
  time::Seconds idle_at = arrival;
  for (int k = 0; k < idles; ++k) {
    idle_at += static_cast<time::Seconds>(rng.uniform(5.0, 120.0));
    const double dur =
        clamp(rng.lognormal_median(config_.idle_median_s, config_.idle_sigma),
              30.0, config_.idle_max_s);
    emit(n - 1, idle_at, dur);
    idle_at += static_cast<time::Seconds>(dur);
  }

  // 5. Stuck record: the radio release was never logged.
  const double p_stuck =
      clamp(archetype_spec(car.archetype).stuck_per_arrival *
                car.stuck_multiplier,
            0.0, 0.95);
  if (rng.bernoulli(p_stuck)) {
    const double dur = rng.uniform(config_.stuck_min_s, config_.stuck_max_s);
    emit(n - 1,
         arrival + static_cast<time::Seconds>(rng.uniform(60.0, 300.0)), dur);
  }

  // 6. Exactly-1-hour reporting artifact (removed by cdr::clean).
  if (rng.bernoulli(config_.hour_artifact_per_trip)) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    emit(idx, enter[idx] + static_cast<time::Seconds>(rng.uniform(0.0, 30.0)),
         3600.0);
  }

  return arrival;
}

}  // namespace ccms::fleet
