// Reference device populations: smartphones and static IoT meters.
//
// §4.7 positions connected cars between two known device classes:
//   "Similarities to smartphones include weekly and diurnal patterns ...
//    Similarities to IoT devices include limited carrier use capability,
//    connecting to a subset of the network cells, short time on the network
//    overall and per session."
// and §2 cites Shafiq et al.'s M2M study and the LANMAN connected-car
// signaling result (4-7x the signaling intensity of regular LTE devices).
//
// To let the comparison run inside one framework, this module generates CDR
// streams for the two reference classes on the same topology the cars use:
//   - smartphones: with their user all waking hours (not just while
//     driving), many short data sessions per day, low mobility (home cell
//     overnight, work cell on weekdays, a little transit),
//   - static IoT meters: bolted to one cell, a few telemetry reports per
//     day, seconds each.
#pragma once

#include <vector>

#include "cdr/record.h"
#include "net/topology.h"
#include "util/rng.h"

namespace ccms::fleet {

/// Tunables of the smartphone generator.
struct SmartphoneConfig {
  int count = 500;
  int study_days = 90;
  /// Data sessions per waking hour. Phones hold few, long RRC sessions:
  /// screen-on periods with continuous traffic keep the connection alive.
  double sessions_per_hour = 1.1;
  /// Session duration: lognormal(median, sigma), clamped to [4 s, 2 h].
  double session_median_s = 480;
  double session_sigma = 1.3;
  /// Waking window, local hours.
  int wake_hour = 7;
  int sleep_hour = 23;
};

/// Tunables of the static-IoT generator.
struct IotMeterConfig {
  int count = 500;
  int study_days = 90;
  /// Telemetry reports per day.
  double reports_per_day = 4;
  /// Report duration: uniform [min, max] seconds.
  double report_min_s = 5;
  double report_max_s = 18;
};

/// Generates smartphone CDRs. Device ids are 0..count-1 (a standalone
/// population; callers keep the datasets separate). Deterministic.
[[nodiscard]] std::vector<cdr::Connection> generate_smartphones(
    const net::Topology& topology, const SmartphoneConfig& config,
    util::Rng& rng);

/// Generates static-meter CDRs. Deterministic.
[[nodiscard]] std::vector<cdr::Connection> generate_iot_meters(
    const net::Topology& topology, const IotMeterConfig& config,
    util::Rng& rng);

}  // namespace ccms::fleet
