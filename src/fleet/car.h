// Per-car profile: everything the generators need to produce one car's
// 90 days of trips and radio connections.
#pragma once

#include <array>

#include "fleet/archetype.h"
#include "net/carrier.h"
#include "util/time.h"
#include "util/types.h"

namespace ccms::fleet {

/// One car of the synthetic fleet. Immutable after fleet building.
struct CarProfile {
  CarId id;
  Archetype archetype = Archetype::kRegularCommuter;

  /// Home base station (trips start/end here) and, for commuters, the work
  /// station. Non-commuters have work == home.
  StationId home;
  StationId work;

  /// Fixed habitual commute departure times (seconds of local day). Small
  /// daily jitter is added at schedule time; the fixed habit is what makes
  /// Fig 5's matrices so regular.
  time::Seconds depart_am = 0;
  time::Seconds depart_pm = 0;

  /// Per-car multiplier on the archetype's day-activity probabilities;
  /// spreads rare drivers over Fig 6's head.
  double activity_scale = 1.0;

  /// Per-car multiplier on the stuck-record probability (log-normal across
  /// the fleet); the fat upper tail produces Fig 3's p99.5 cars that are
  /// "connected" 27% of the study.
  double stuck_multiplier = 1.0;

  /// Which carriers this modem can use (Table 3's capability story).
  std::array<bool, net::kCarrierCount> carrier_support{};

  /// The band the modem camps on where available (modems are sticky: they
  /// re-acquire the same carrier at habitual locations day after day).
  CarrierId preferred_carrier{2};

  /// Offset of the car's local time from study reference time, in hours.
  /// Zero in the default single-metro configuration.
  int tz_offset_hours = 0;

  /// Local-time -> study-time conversion for this car.
  [[nodiscard]] time::Seconds to_reference(time::Seconds local) const {
    return local - tz_offset_hours * time::kSecondsPerHour;
  }
};

}  // namespace ccms::fleet
