// Exact quantiles and empirical CDFs.
//
// The paper reports specific percentiles throughout: median per-cell session
// 105 s and "73rd percentile at 600 s" (Fig 9), handover p50/p70/p90 (§4.5),
// connected-time p99.5 (Fig 3), and deciles of busy-cell time (Fig 7). We
// compute exact order statistics over the full sample (no sketching).
//
// Storage is run-length encoded: the sorted unique values plus a count per
// value. Heavily duplicated integer-valued samples (per-cell session
// durations, handovers per session) compress from one entry per record to
// one entry per distinct value, which is what lets a StudyReport over the
// paper's 1.1B connections fit in memory. Every statistic is computed to be
// bitwise identical to the old expanded-vector implementation: quantile and
// cdf index the virtual expanded array through the cumulative counts, and
// mean() performs the same ascending repeated additions std::accumulate did
// over the sorted expansion.
#pragma once

#include <cstdint>
#include <vector>

namespace ccms::stats {

/// Empirical distribution over a sample. Construction sorts a copy and
/// run-length encodes it.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> sample);

  /// Builds directly from run-length encoded form: `values` strictly
  /// ascending, `counts[i]` > 0 occurrences of `values[i]`. This is the
  /// constructor the out-of-core accumulators use — equivalent to expanding
  /// the runs and using the sample constructor, without the expansion.
  [[nodiscard]] static EmpiricalDistribution from_sorted_runs(
      std::vector<double> values, std::vector<std::uint64_t> counts);

  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(total_);
  }

  /// Quantile for q in [0,1], linear interpolation between order statistics
  /// (type-7, the R/NumPy default). Returns 0 on an empty sample.
  [[nodiscard]] double quantile(double q) const;

  /// Convenience: quantile(0.5).
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of the sample <= x (empirical CDF).
  [[nodiscard]] double cdf(double x) const;

  /// Mean of the sample.
  [[nodiscard]] double mean() const;

  /// The ten deciles q=0.1..1.0 (Fig 7 is a decile plot).
  [[nodiscard]] std::vector<double> deciles() const;

  /// Sample the CDF at `points` evenly spaced x positions across
  /// [min, max] — the form the figure benches print.
  struct CdfPoint {
    double x = 0;
    double p = 0;
  };
  [[nodiscard]] std::vector<CdfPoint> cdf_curve(int points = 50) const;

  /// The sample expanded in ascending order. Materializes size() doubles —
  /// fine for tests and report comparison, not for billion-record samples;
  /// sweeps at scale should iterate values()/counts() instead.
  [[nodiscard]] std::vector<double> sorted() const;

  /// Run-length encoded view: sorted unique values and their counts.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  /// Value of virtual sorted()[index], via the cumulative counts.
  [[nodiscard]] double at(std::uint64_t index) const;

  std::vector<double> values_;          ///< sorted, unique
  std::vector<std::uint64_t> counts_;   ///< per-value multiplicities
  std::vector<std::uint64_t> cum_;      ///< inclusive prefix sums of counts_
  std::uint64_t total_ = 0;
};

}  // namespace ccms::stats
