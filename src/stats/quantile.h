// Exact quantiles and empirical CDFs.
//
// The paper reports specific percentiles throughout: median per-cell session
// 105 s and "73rd percentile at 600 s" (Fig 9), handover p50/p70/p90 (§4.5),
// connected-time p99.5 (Fig 3), and deciles of busy-cell time (Fig 7). We
// compute exact order statistics over the full sample (no sketching): the
// scaled-down study fits comfortably in memory, matching the paper's own
// offline batch setting.
#pragma once

#include <span>
#include <vector>

namespace ccms::stats {

/// Empirical distribution over a sample. Construction sorts a copy.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> sample);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Quantile for q in [0,1], linear interpolation between order statistics
  /// (type-7, the R/NumPy default). Returns 0 on an empty sample.
  [[nodiscard]] double quantile(double q) const;

  /// Convenience: quantile(0.5).
  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of the sample <= x (empirical CDF).
  [[nodiscard]] double cdf(double x) const;

  /// Mean of the sample.
  [[nodiscard]] double mean() const;

  /// The ten deciles q=0.1..1.0 (Fig 7 is a decile plot).
  [[nodiscard]] std::vector<double> deciles() const;

  /// Sample the CDF at `points` evenly spaced x positions across
  /// [min, max] — the form the figure benches print.
  struct CdfPoint {
    double x = 0;
    double p = 0;
  };
  [[nodiscard]] std::vector<CdfPoint> cdf_curve(int points = 50) const;

  /// Sorted underlying sample (ascending), for custom sweeps.
  [[nodiscard]] std::span<const double> sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace ccms::stats
