// Ordinary least squares over (x, y) pairs.
//
// Fig 2 overlays linear trend lines on the daily car/cell presence series and
// reports their equations and R^2 (e.g. "y = 0.0003x + 0.6448, R^2 = 0.0333").
// This is that fit.
#pragma once

#include <span>

namespace ccms::stats {

/// Result of a simple linear regression y = slope*x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;  ///< coefficient of determination; 0 if undefined
  long long n = 0;

  /// Predicted value at x.
  [[nodiscard]] double at(double x) const { return slope * x + intercept; }
};

/// OLS over paired spans (must be the same length; extra elements of the
/// longer span are ignored). Returns a zero fit for fewer than 2 points or
/// zero x-variance.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// OLS where x is the index 0..y.size()-1 (the Fig 2 day axis).
[[nodiscard]] LinearFit linear_fit_indexed(std::span<const double> y);

}  // namespace ccms::stats
