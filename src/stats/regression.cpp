#include "stats/regression.h"

#include <algorithm>
#include <vector>

namespace ccms::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  fit.n = static_cast<long long>(n);
  if (n < 2) return fit;

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0) return fit;

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0 ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

LinearFit linear_fit_indexed(std::span<const double> y) {
  std::vector<double> x(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) x[i] = static_cast<double>(i);
  return linear_fit(x, y);
}

}  // namespace ccms::stats
