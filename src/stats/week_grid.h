// Per-bin-of-week accumulation grids.
//
// Several analyses reduce a 90-day signal onto a canonical week of
// 672 fifteen-minute bins (or fold further to 96 bins of the day):
//   - busy-cell classification averages U_PRB per bin (Table 2, Fig 7),
//   - Fig 10 plots a week of concurrency vs PRB per cell,
//   - Fig 11 clusters 96-bin daily concurrency vectors,
//   - Fig 5's 24x7 matrices are an hourly fold of the same idea.
// WeekGrid is the shared sum/count accumulator for all of them.
#pragma once

#include <array>
#include <vector>

#include "util/time.h"

namespace ccms::stats {

/// Accumulates (sum, count) per 15-minute bin of the week and reports means.
class WeekGrid {
 public:
  WeekGrid() = default;

  /// Add an observation for the bin containing `t`.
  void add(time::Seconds t, double value) {
    add_bin(time::bin15_of_week(t), value);
  }

  /// Add an observation for an explicit bin-of-week index [0, 672).
  void add_bin(int bin, double value) {
    sums_[static_cast<std::size_t>(bin)] += value;
    ++counts_[static_cast<std::size_t>(bin)];
  }

  /// Mean of the observations in `bin`; `fallback` if none were recorded.
  [[nodiscard]] double mean(int bin, double fallback = 0.0) const {
    const auto i = static_cast<std::size_t>(bin);
    return counts_[i] > 0 ? sums_[i] / static_cast<double>(counts_[i])
                          : fallback;
  }

  [[nodiscard]] long long count(int bin) const {
    return counts_[static_cast<std::size_t>(bin)];
  }

  /// All 672 means, Monday 00:00 first.
  [[nodiscard]] std::vector<double> weekly_means(double fallback = 0.0) const;

  /// Fold to 96 bins of the day (mean over the 7 weekdays of each bin),
  /// the vector form clustered in Fig 11.
  [[nodiscard]] std::vector<double> daily_means(double fallback = 0.0) const;

  /// Mean over all bins that have data.
  [[nodiscard]] double overall_mean(double fallback = 0.0) const;

 private:
  std::array<double, time::kBins15PerWeek> sums_{};
  std::array<long long, time::kBins15PerWeek> counts_{};
};

}  // namespace ccms::stats
