#include "stats/descriptive.h"

#include <cmath>

namespace ccms::stats {

double Accumulator::stddev() const { return std::sqrt(variance_sample()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n_total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n_total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n_total);
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  n_ = n_total;
}

}  // namespace ccms::stats
