#include "stats/quantile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ccms::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sample)
    : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::quantile(double q) const {
  if (sorted_.empty()) return 0;
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  const double h = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

double EmpiricalDistribution::cdf(double x) const {
  if (sorted_.empty()) return 0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::mean() const {
  if (sorted_.empty()) return 0;
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

std::vector<double> EmpiricalDistribution::deciles() const {
  std::vector<double> d;
  d.reserve(10);
  for (int i = 1; i <= 10; ++i) d.push_back(quantile(i / 10.0));
  return d;
}

std::vector<EmpiricalDistribution::CdfPoint>
EmpiricalDistribution::cdf_curve(int points) const {
  std::vector<CdfPoint> curve;
  if (sorted_.empty() || points < 2) return curve;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    curve.push_back({x, cdf(x)});
  }
  return curve;
}

}  // namespace ccms::stats
