#include "stats/quantile.h"

#include <algorithm>
#include <cassert>

namespace ccms::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  values_.reserve(64);
  counts_.reserve(64);
  for (std::size_t i = 0; i < sample.size();) {
    std::size_t j = i + 1;
    while (j < sample.size() && sample[j] == sample[i]) ++j;
    values_.push_back(sample[i]);
    counts_.push_back(j - i);
    i = j;
  }
  cum_.resize(counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cum_[i] = running;
  }
  total_ = running;
}

EmpiricalDistribution EmpiricalDistribution::from_sorted_runs(
    std::vector<double> values, std::vector<std::uint64_t> counts) {
  assert(values.size() == counts.size());
  EmpiricalDistribution d;
  d.values_ = std::move(values);
  d.counts_ = std::move(counts);
  d.cum_.resize(d.counts_.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < d.counts_.size(); ++i) {
    assert(d.counts_[i] > 0);
    assert(i == 0 || d.values_[i - 1] < d.values_[i]);
    running += d.counts_[i];
    d.cum_[i] = running;
  }
  d.total_ = running;
  return d;
}

double EmpiricalDistribution::at(std::uint64_t index) const {
  // First run whose inclusive prefix sum exceeds `index`.
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), index);
  return values_[static_cast<std::size_t>(it - cum_.begin())];
}

double EmpiricalDistribution::quantile(double q) const {
  if (total_ == 0) return 0;
  if (q <= 0) return values_.front();
  if (q >= 1) return values_.back();
  const double h = q * static_cast<double>(total_ - 1);
  const auto lo = static_cast<std::uint64_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= total_) return values_.back();
  const double a = at(lo);
  const double b = at(lo + 1);
  return a + frac * (b - a);
}

double EmpiricalDistribution::cdf(double x) const {
  if (total_ == 0) return 0;
  // Count of sample values <= x: cumulative count through the last run
  // whose value is <= x.
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  if (it == values_.begin()) return 0;
  const auto run = static_cast<std::size_t>(it - values_.begin()) - 1;
  return static_cast<double>(cum_[run]) / static_cast<double>(total_);
}

double EmpiricalDistribution::mean() const {
  if (total_ == 0) return 0;
  // Repeated ascending additions, exactly the sequence std::accumulate
  // performed over the sorted expansion — bitwise, not just numerically,
  // identical to the pre-RLE implementation.
  double sum = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    for (std::uint64_t k = 0; k < counts_[i]; ++k) sum += values_[i];
  }
  return sum / static_cast<double>(total_);
}

std::vector<double> EmpiricalDistribution::deciles() const {
  std::vector<double> d;
  d.reserve(10);
  for (int i = 1; i <= 10; ++i) d.push_back(quantile(i / 10.0));
  return d;
}

std::vector<EmpiricalDistribution::CdfPoint>
EmpiricalDistribution::cdf_curve(int points) const {
  std::vector<CdfPoint> curve;
  if (total_ == 0 || points < 2) return curve;
  const double lo = values_.front();
  const double hi = values_.back();
  curve.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    curve.push_back({x, cdf(x)});
  }
  return curve;
}

std::vector<double> EmpiricalDistribution::sorted() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(total_));
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.insert(out.end(), static_cast<std::size_t>(counts_[i]), values_[i]);
  }
  return out;
}

}  // namespace ccms::stats
