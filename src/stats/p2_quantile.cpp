#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace ccms::stats {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.001, 0.999)) {
  desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
  increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
}

void P2Quantile::insert_sorted(double x) {
  // First five observations: keep them sorted.
  auto i = static_cast<std::size_t>(count_);
  heights_[i] = x;
  for (; i > 0 && heights_[i - 1] > heights_[i]; --i) {
    std::swap(heights_[i - 1], heights_[i]);
  }
}

double P2Quantile::parabolic(int i, int d) const {
  const double qi = heights_[static_cast<std::size_t>(i)];
  const double qp = heights_[static_cast<std::size_t>(i + 1)];
  const double qm = heights_[static_cast<std::size_t>(i - 1)];
  const double ni = positions_[static_cast<std::size_t>(i)];
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  return qi + d / (np - nm) *
                  ((ni - nm + d) * (qp - qi) / (np - ni) +
                   (np - ni - d) * (qi - qm) / (ni - nm));
}

double P2Quantile::linear(int i, int d) const {
  const auto ii = static_cast<std::size_t>(i);
  const auto id = static_cast<std::size_t>(i + d);
  return heights_[ii] + d * (heights_[id] - heights_[ii]) /
                            (positions_[id] - positions_[ii]);
}

void P2Quantile::add(double x) {
  if (!std::isfinite(x)) {
    // A NaN would otherwise wedge the cell search into the top branch and
    // overwrite the max marker, corrupting every later estimate.
    ++ignored_;
    return;
  }
  if (count_ < 5) {
    insert_sorted(x);
    ++count_;
    if (count_ == 5) {
      positions_ = {1, 2, 3, 4, 5};
    }
    return;
  }

  // Find the cell k containing x and adjust extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[static_cast<std::size_t>(i)] += 1;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] +=
        increments_[static_cast<std::size_t>(i)];
  }

  // Adjust interior markers.
  for (int i = 1; i <= 3; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const double delta = desired_[ii] - positions_[ii];
    const bool can_up = positions_[ii + 1] - positions_[ii] > 1;
    const bool can_down = positions_[ii - 1] - positions_[ii] < -1;
    if ((delta >= 1 && can_up) || (delta <= -1 && can_down)) {
      const int d = delta >= 1 ? 1 : -1;
      double candidate = parabolic(i, d);
      if (heights_[ii - 1] < candidate && candidate < heights_[ii + 1]) {
        heights_[ii] = candidate;
      } else {
        heights_[ii] = linear(i, d);
      }
      positions_[ii] += d;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) return 0;
  if (count_ < 5) {
    // Exact small-sample quantile: type-7 linear interpolation between
    // order statistics of the sorted prefix, matching
    // EmpiricalDistribution::quantile so batch and streaming paths agree
    // on tiny cells.
    const auto n = static_cast<std::size_t>(count_);
    const double h = q_ * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(n - 1, lo + 1);
    return heights_[lo] + (h - std::floor(h)) * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

}  // namespace ccms::stats
