// k-means clustering (k-means++ seeding + Lloyd iterations).
//
// §4.4 / Fig 11: the paper takes every busy cell (weekly average PRB >= 70%),
// forms a 96-dimensional vector of concurrent-car counts per 15-minute bin of
// the day, and runs "the classic k-means algorithm", obtaining two clusters —
// a large cluster of cells with few concurrent cars and a ~4x smaller cluster
// with ~5x more concurrent cars. This module is that algorithm, deterministic
// given the caller's Rng.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace ccms::stats {

/// Result of one k-means run.
struct KMeansResult {
  /// centroids[c] is a vector of the input dimension.
  std::vector<std::vector<double>> centroids;
  /// assignment[i] in [0, k) for each input point.
  std::vector<int> assignment;
  /// Sum of squared distances of points to their centroids.
  double inertia = 0;
  /// Lloyd iterations executed.
  int iterations = 0;
  /// Points per cluster.
  std::vector<std::size_t> sizes;
};

/// Options for `kmeans`.
struct KMeansOptions {
  int k = 2;
  int max_iterations = 100;
  /// Stop when no assignment changes (always checked) or when inertia
  /// improves by less than this relative amount between iterations.
  double tolerance = 1e-6;
  /// Number of independent restarts; the best (lowest-inertia) run wins.
  int restarts = 4;
};

/// Cluster `points` (all rows must share the same dimension; dimension-0 or
/// empty input yields an empty result; k is clamped to the number of points).
[[nodiscard]] KMeansResult kmeans(std::span<const std::vector<double>> points,
                                  const KMeansOptions& options, util::Rng& rng);

/// Squared Euclidean distance between equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace ccms::stats
