#include "stats/kmeans.h"

#include <algorithm>
#include <limits>

namespace ccms::stats {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<std::vector<double>> seed_plus_plus(
    std::span<const std::vector<double>> points, int k, util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  const auto n = static_cast<std::int64_t>(points.size());
  centroids.push_back(points[static_cast<std::size_t>(
      rng.uniform_int(0, n - 1))]);

  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (static_cast<int>(centroids.size()) < k) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
    }
    const std::size_t next = rng.categorical(d2);
    centroids.push_back(points[next]);
  }
  return centroids;
}

KMeansResult lloyd(std::span<const std::vector<double>> points,
                   std::vector<std::vector<double>> centroids,
                   const KMeansOptions& options) {
  KMeansResult result;
  result.centroids = std::move(centroids);
  const auto k = result.centroids.size();
  const std::size_t dim = points.empty() ? 0 : points[0].size();
  result.assignment.assign(points.size(), -1);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    double inertia = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
      inertia += best_d;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<std::vector<double>> sums(
        k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<std::size_t>(result.assignment[i]);
      ++counts[c];
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] += points[i][j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid for empty cluster
      for (std::size_t j = 0; j < dim; ++j) {
        result.centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }

    if (!changed) break;
    if (prev_inertia < std::numeric_limits<double>::infinity() &&
        prev_inertia - inertia <= options.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = inertia;
  }

  result.sizes.assign(k, 0);
  for (const int a : result.assignment) {
    ++result.sizes[static_cast<std::size_t>(a)];
  }
  return result;
}

}  // namespace

KMeansResult kmeans(std::span<const std::vector<double>> points,
                    const KMeansOptions& options, util::Rng& rng) {
  KMeansResult best;
  if (points.empty() || options.k < 1) return best;
  const int k = std::min<int>(options.k, static_cast<int>(points.size()));

  best.inertia = std::numeric_limits<double>::infinity();
  const int restarts = std::max(1, options.restarts);
  for (int r = 0; r < restarts; ++r) {
    auto centroids = seed_plus_plus(points, k, rng);
    KMeansOptions opt = options;
    opt.k = k;
    KMeansResult run = lloyd(points, std::move(centroids), opt);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace ccms::stats
