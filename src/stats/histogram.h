// Fixed-width histograms (Fig 6: number of days each car was on the network).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccms::stats {

/// Fixed-width histogram over [lo, hi). Values outside the range clamp into
/// the first/last bin (the paper's Fig 6 axis covers the full 0..90 range, so
/// clamping only guards against floating-point edge cases).
class Histogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi). Requires bins >= 1
  /// and hi > lo; otherwise a single degenerate bin is used.
  Histogram(double lo, double hi, int bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] int bin_count() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] double count(int bin) const;
  [[nodiscard]] double total() const { return total_; }

  /// Inclusive-exclusive range [lower(bin), upper(bin)) of a bin.
  [[nodiscard]] double lower(int bin) const;
  [[nodiscard]] double upper(int bin) const;

  /// Bin index a value falls into (after clamping).
  [[nodiscard]] int bin_of(double x) const;

  /// All counts, for plotting.
  [[nodiscard]] const std::vector<double>& counts() const { return counts_; }

  /// Index of the first local minimum followed by a sustained rise — the
  /// "knee" heuristic the paper eyeballs in Fig 6 to justify the 10-day
  /// rare/common boundary. `smooth_window` applies a centred moving average
  /// first. Returns -1 if the histogram is monotone.
  [[nodiscard]] int knee_bin(int smooth_window = 5) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace ccms::stats
