#include "stats/week_grid.h"

namespace ccms::stats {

std::vector<double> WeekGrid::weekly_means(double fallback) const {
  std::vector<double> out(time::kBins15PerWeek, fallback);
  for (int b = 0; b < time::kBins15PerWeek; ++b) {
    out[static_cast<std::size_t>(b)] = mean(b, fallback);
  }
  return out;
}

std::vector<double> WeekGrid::daily_means(double fallback) const {
  std::vector<double> out(time::kBins15PerDay, fallback);
  for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
    double sum = 0;
    long long n = 0;
    for (int day = 0; day < time::kDaysPerWeek; ++day) {
      const int wb = day * time::kBins15PerDay + bin;
      const auto i = static_cast<std::size_t>(wb);
      sum += sums_[i];
      n += counts_[i];
    }
    out[static_cast<std::size_t>(bin)] =
        n > 0 ? sum / static_cast<double>(n) : fallback;
  }
  return out;
}

double WeekGrid::overall_mean(double fallback) const {
  double sum = 0;
  long long n = 0;
  for (int b = 0; b < time::kBins15PerWeek; ++b) {
    const auto i = static_cast<std::size_t>(b);
    sum += sums_[i];
    n += counts_[i];
  }
  return n > 0 ? sum / static_cast<double>(n) : fallback;
}

}  // namespace ccms::stats
