// P² streaming quantile estimation (Jain & Chlamtac, 1985).
//
// The exact quantiles in stats/quantile.h sort the full sample — fine for
// the scaled-down synthetic studies, but the paper's real input is 1.1
// *billion* records. The P² algorithm tracks a single quantile with five
// markers and O(1) memory per observation, letting the Fig 3/9 percentile
// analyses stream over arbitrarily large CDR exports. perf_pipeline
// benchmarks it against the exact path.
#pragma once

#include <array>
#include <cstdint>

namespace ccms::stats {

/// Streaming estimator of one quantile q in (0, 1).
class P2Quantile {
 public:
  /// q is clamped to [0.001, 0.999].
  explicit P2Quantile(double q);

  /// Adds one observation.
  void add(double x);

  /// Current estimate. Exact while fewer than 5 observations have been
  /// seen; 0 if none.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  void insert_sorted(double x);
  [[nodiscard]] double parabolic(int i, int d) const;
  [[nodiscard]] double linear(int i, int d) const;

  double q_;
  std::int64_t count_ = 0;
  // Marker heights, positions (1-based as in the paper's formulation) and
  // desired positions.
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace ccms::stats
