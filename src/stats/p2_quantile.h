// P² streaming quantile estimation (Jain & Chlamtac, 1985).
//
// The exact quantiles in stats/quantile.h sort the full sample — fine for
// the scaled-down synthetic studies, but the paper's real input is 1.1
// *billion* records. The P² algorithm tracks a single quantile with five
// markers and O(1) memory per observation, letting the Fig 3/9 percentile
// analyses stream over arbitrarily large CDR exports. perf_pipeline
// benchmarks it against the exact path.
#pragma once

#include <array>
#include <cstdint>

namespace ccms::stats {

/// Streaming estimator of one quantile q in (0, 1).
///
/// Hardened for the streaming path (ccms::stream feeds it unbounded dirty
/// telemetry): non-finite observations are skipped and counted instead of
/// poisoning the markers, and with fewer than 5 observations the estimate is
/// the exact type-7 interpolated quantile of the prefix — the same
/// convention as stats::EmpiricalDistribution — rather than a coarse
/// nearest-rank pick. Duplicate-heavy streams (RRC-timeout atoms dominate
/// real CDR durations) keep the estimate pinned to the majority atom; see
/// stats_p2_quantile_test for the guarantees.
class P2Quantile {
 public:
  /// q is clamped to [0.001, 0.999].
  explicit P2Quantile(double q);

  /// Adds one observation. Non-finite values are ignored (and counted via
  /// ignored()): one corrupt duration must not poison a 90-day estimate.
  void add(double x);

  /// Current estimate. Exact (type-7, matching EmpiricalDistribution) while
  /// fewer than 5 observations have been seen; 0 if none.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::int64_t count() const { return count_; }

  /// Observations dropped because they were NaN/inf.
  [[nodiscard]] std::int64_t ignored() const { return ignored_; }

  [[nodiscard]] double q() const { return q_; }

  /// Full durable state: with < 5 observations `heights` doubles as the
  /// sorted prefix buffer, so everything must round-trip for the estimate to
  /// stay bit-exact across a checkpoint/restore.
  struct State {
    double q = 0.5;
    std::int64_t count = 0;
    std::int64_t ignored = 0;
    std::array<double, 5> heights{};
    std::array<double, 5> positions{};
    std::array<double, 5> desired{};
    std::array<double, 5> increments{};
  };
  [[nodiscard]] State state() const {
    return {q_, count_, ignored_, heights_, positions_, desired_, increments_};
  }
  void restore(const State& s) {
    q_ = s.q;
    count_ = s.count;
    ignored_ = s.ignored;
    heights_ = s.heights;
    positions_ = s.positions;
    desired_ = s.desired;
    increments_ = s.increments;
  }

 private:
  void insert_sorted(double x);
  [[nodiscard]] double parabolic(int i, int d) const;
  [[nodiscard]] double linear(int i, int d) const;

  double q_;
  std::int64_t count_ = 0;
  std::int64_t ignored_ = 0;
  // Marker heights, positions (1-based as in the paper's formulation) and
  // desired positions.
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

}  // namespace ccms::stats
