// Streaming descriptive statistics (Welford's online algorithm).
//
// Table 1 reports per-weekday means and standard deviations of daily
// presence fractions; Fig 3/9 report means of duration distributions. The
// accumulator below is the single implementation behind all of them.
#pragma once

#include <cstdint>
#include <limits>

namespace ccms::stats {

/// Online mean/variance/min/max accumulator (Welford).
class Accumulator {
 public:
  /// Add one observation.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (divide by n). Returns 0 for n < 1.
  [[nodiscard]] double variance_population() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Sample variance (divide by n-1). Returns 0 for n < 2.
  [[nodiscard]] double variance_sample() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  /// Sample standard deviation, the flavour Table 1 reports.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] double min() const {
    return n_ > 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? max_ : 0.0;
  }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  /// Full durable state. min/max are serialized raw (±inf while empty) so a
  /// checkpoint/restore round trip is bit-exact mid-stream.
  struct State {
    std::int64_t n = 0;
    double mean = 0;
    double m2 = 0;
    double sum = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  [[nodiscard]] State state() const {
    return {n_, mean_, m2_, sum_, min_, max_};
  }
  void restore(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ccms::stats
