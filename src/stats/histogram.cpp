#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace ccms::stats {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins < 1) {
    lo_ = lo;
    hi_ = lo + 1;
    bins = 1;
  }
  counts_.assign(static_cast<std::size_t>(bins), 0.0);
}

int Histogram::bin_of(double x) const {
  const int bins = bin_count();
  const double f = (x - lo_) / (hi_ - lo_);
  int b = static_cast<int>(f * bins);
  return std::clamp(b, 0, bins - 1);
}

void Histogram::add(double x, double weight) {
  counts_[static_cast<std::size_t>(bin_of(x))] += weight;
  total_ += weight;
}

double Histogram::count(int bin) const {
  if (bin < 0 || bin >= bin_count()) return 0;
  return counts_[static_cast<std::size_t>(bin)];
}

double Histogram::lower(int bin) const {
  return lo_ + (hi_ - lo_) * bin / bin_count();
}

double Histogram::upper(int bin) const { return lower(bin + 1); }

int Histogram::knee_bin(int smooth_window) const {
  const int n = bin_count();
  if (n < 3) return -1;
  // Centred moving average.
  std::vector<double> s(static_cast<std::size_t>(n), 0.0);
  const int hw = std::max(0, smooth_window / 2);
  for (int i = 0; i < n; ++i) {
    double sum = 0;
    int cnt = 0;
    for (int j = std::max(0, i - hw); j <= std::min(n - 1, i + hw); ++j) {
      sum += counts_[static_cast<std::size_t>(j)];
      ++cnt;
    }
    s[static_cast<std::size_t>(i)] = sum / cnt;
  }
  // First index that is a local minimum and from which the curve rises for at
  // least two consecutive bins.
  for (int i = 1; i + 2 < n; ++i) {
    if (s[static_cast<std::size_t>(i)] <= s[static_cast<std::size_t>(i - 1)] &&
        s[static_cast<std::size_t>(i + 1)] >= s[static_cast<std::size_t>(i)] &&
        s[static_cast<std::size_t>(i + 2)] >=
            s[static_cast<std::size_t>(i + 1)]) {
      return i;
    }
  }
  return -1;
}

}  // namespace ccms::stats
