// The invariant registry: every universal property the harness asserts,
// with the paper-facing guarantee each one protects.
//
// The registry is declarative — one InvariantInfo per property — so the
// runner, the JSON summary, the docs table and the CI gate all speak the
// same names. A check result must carry a registered name; Checker enforces
// that at the call site, so an invariant cannot silently drift out of the
// documented registry.
//
// The properties themselves are the integrity laws the study's §3/§4
// accounting already almost asserts piecewise (DESIGN.md §7/§8/§11),
// promoted to named, machine-checked form:
//
//   conservation   nothing is ever silently dropped at any stage
//   partition      every stage's accounting tiles its input exactly
//   monotonicity   watermarks only advance
//   idempotence    checkpoints re-encode to identical bytes
//   determinism    equal (scenario, seed) -> bit-identical reports
//   bounds         quarantine retention and P2 error stay bounded
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccms::harness {

/// One registered invariant.
struct InvariantInfo {
  std::string_view name;         ///< stable machine name (kebab-case)
  std::string_view description;  ///< what must hold
  std::string_view protects;     ///< the paper-facing guarantee at stake
};

/// Every invariant the harness may check, in documentation order.
[[nodiscard]] const std::vector<InvariantInfo>& invariant_registry();

/// Registry lookup; nullptr when unknown.
[[nodiscard]] const InvariantInfo* find_invariant(std::string_view name);

/// One evaluated check: an invariant applied at one stage of one scenario
/// run.
struct CheckResult {
  std::string invariant;  ///< a registered name
  std::string stage;      ///< "batch" | "stream" | "restore"
  bool pass = false;
  std::string detail;  ///< observed values; for failures this is the
                       ///< reproducible violation signature
};

/// Accumulates check results, enforcing that every name is registered.
class Checker {
 public:
  /// Records one result. Aborts (assert-style, via std::abort after a
  /// diagnostic) if `invariant` is not in the registry — a misspelled
  /// check is a harness bug, not a scenario failure.
  void check(std::string_view invariant, std::string_view stage, bool pass,
             std::string detail);

  [[nodiscard]] const std::vector<CheckResult>& results() const {
    return results_;
  }
  [[nodiscard]] bool all_passed() const;
  /// First failing result, or nullptr when green.
  [[nodiscard]] const CheckResult* first_failure() const;

  [[nodiscard]] std::vector<CheckResult> take() && {
    return std::move(results_);
  }

 private:
  std::vector<CheckResult> results_;
};

}  // namespace ccms::harness
