// Declarative scenarios for the invariants harness.
//
// A Scenario is a complete, seeded description of one adversarial run:
// a workload (fleet size, days, topology), a fault plan (CSV corruption,
// provably-late jitter, flaky at-least-once delivery, duplicate floods,
// shard death, kill+restore points, backpressure and quarantine pressure)
// and the stages to execute (batch pipeline, stream replay, checkpoint/
// restore matrix). Everything is derived from (scenario, seed) alone, so a
// run reproduces bit for bit from its serialized form — the property the
// flight recorder (harness/replay.h) leans on.
//
// The shipped pack (named_scenarios) covers the failure modes a passive
// measurement study must stay correct under: dirty telemetry, reordered
// and disconnecting feeds, duplicate storms, dying shards, mid-run kills
// and quarantine saturation. Each named scenario runs green through
// harness::run_scenario for any seed; see DESIGN.md §12.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace ccms::harness {

/// The seeded workload a scenario simulates. `pristine` starts from
/// sim::SimConfig::pristine() (no modelled quirks) so injected faults are
/// the only dirt in the trace and detection counts can be asserted exactly.
struct Workload {
  std::uint32_t cars = 400;
  int days = 14;
  int grid = 10;  ///< topology grid width == height
  bool pristine = true;
};

/// The composable fault plan. Fields default to "off"; a scenario switches
/// on the dimensions it stresses. Feed perturbations are mutually
/// exclusive by precedence: flaky (disconnect/reorder) > jitter
/// (late/delay) > duplicate flood > plain arrival order.
struct FaultPlan {
  /// CSV corruption rate, an even mix of every fault class
  /// (faults::CsvFaultRates::uniform), applied to the exported study
  /// before ingest. 0 = canonical CSV.
  double csv_corruption = 0;

  /// Fraction of records made provably late (quarantined past the
  /// watermark) by faults::FaultInjector::jitter_feed.
  double feed_late_rate = 0;
  /// Uniform arrival delay bound for jitter_feed, seconds. > 0 enables
  /// jitter even when feed_late_rate == 0.
  time::Seconds feed_max_delay = 0;

  /// faults::FlakyFeed at-least-once delivery: disconnect and reorder
  /// burst rates. > 0 requires Scenario::exactly_once.
  double disconnect_rate = 0;
  double reorder_rate = 0;

  /// Every record delivered this many times back to back (>= 2 is a
  /// duplicate flood the exactly-once cursors must absorb).
  int duplicate_factor = 1;

  /// Shard death: the operator hook throws on this shard (-1 = none)...
  int kill_shard = -1;
  /// ...once the shard has integrated this many records.
  std::uint64_t kill_shard_after = 0;

  /// Kill+restore matrix (restore stage): feed fractions at which the
  /// engine is killed, checkpoint-restored and replayed from the last
  /// acknowledged feed position.
  std::vector<double> kill_points;

  /// Engine pressure knobs: quarantine retention cap and the queue/batch
  /// geometry (small queues force producer backpressure).
  std::size_t quarantine_cap = 64;
  std::size_t queue_batches = 64;
  std::size_t batch_records = 512;

  /// Negative-test sabotage: silently skip delivering one mid-feed record
  /// while still counting it as presented. Violates conservation-presented
  /// by construction — exists to prove the harness catches silent loss and
  /// to exercise the flight-recorder path.
  bool sabotage_drop = false;
};

/// One named, self-contained harness scenario.
struct Scenario {
  std::string name;
  std::string description;

  Workload workload;
  FaultPlan faults;

  int shards = 4;
  bool exactly_once = false;
  time::Seconds allowed_lateness = 300;

  /// Stages to execute.
  bool run_batch = true;
  bool run_stream = true;
  bool run_restore = false;  ///< requires exactly_once + a flaky feed

  /// Check batch/stream parity (against the survivors minus the provably
  /// late set). Off for scenarios that lose records by design (shard
  /// death).
  bool check_parity = true;
  /// The scenario is *supposed* to degrade shards; coverage accounting is
  /// then asserted lossy, not clean.
  bool expect_degraded = false;
  /// Run the stream stage twice and require bitwise-identical reports.
  bool check_rerun_determinism = false;
  /// Mid-run checkpoint -> restore into a fresh engine -> re-checkpoint
  /// must re-encode to identical bytes.
  bool check_checkpoint_idempotence = false;
  /// Round-trip the lenient dataset through the CCDR2 columnar format and
  /// require both the materialized round trip and the out-of-core columnar
  /// sweep to reproduce every batch figure bitwise.
  bool check_columnar = false;
};

/// The shipped scenario pack (~10 scenarios; see file comment).
[[nodiscard]] const std::vector<Scenario>& named_scenarios();

/// Looks up a shipped scenario by name; nullptr when unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// Serializes (scenario, seed) as deterministic `key=value` lines — the
/// flight-recorder format. parse() round-trips it exactly.
[[nodiscard]] std::string serialize_scenario(const Scenario& scenario,
                                             std::uint64_t seed);

struct ParsedScenario {
  Scenario scenario;
  std::uint64_t seed = 0;
};

/// Parses serialize_scenario output. Unknown keys and malformed values are
/// errors (a replay bundle must not half-load): returns nullopt and fills
/// `error`.
[[nodiscard]] std::optional<ParsedScenario> parse_scenario(
    std::string_view text, std::string* error = nullptr);

}  // namespace ccms::harness
