// Declarative scenarios for the invariants harness.
//
// A Scenario is a complete, seeded description of one adversarial run:
// a workload (fleet size, days, topology), a fault plan (CSV corruption,
// provably-late jitter, flaky at-least-once delivery, duplicate floods,
// shard death, kill+restore points, backpressure and quarantine pressure)
// and the stages to execute (batch pipeline, stream replay, checkpoint/
// restore matrix). Everything is derived from (scenario, seed) alone, so a
// run reproduces bit for bit from its serialized form — the property the
// flight recorder (harness/replay.h) leans on.
//
// The shipped pack (named_scenarios) covers the failure modes a passive
// measurement study must stay correct under: dirty telemetry, reordered
// and disconnecting feeds, duplicate storms, dying shards, mid-run kills
// and quarantine saturation. Each named scenario runs green through
// harness::run_scenario for any seed; see DESIGN.md §12.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.h"

namespace ccms::harness {

/// The seeded workload a scenario simulates. `pristine` starts from
/// sim::SimConfig::pristine() (no modelled quirks) so injected faults are
/// the only dirt in the trace and detection counts can be asserted exactly.
struct Workload {
  std::uint32_t cars = 400;
  int days = 14;
  int grid = 10;  ///< topology grid width == height
  bool pristine = true;
};

/// The composable fault plan. Fields default to "off"; a scenario switches
/// on the dimensions it stresses. Feed perturbations are mutually
/// exclusive by precedence: flaky (disconnect/reorder) > jitter
/// (late/delay) > duplicate flood > plain arrival order.
struct FaultPlan {
  /// CSV corruption rate, an even mix of every fault class
  /// (faults::CsvFaultRates::uniform), applied to the exported study
  /// before ingest. 0 = canonical CSV.
  double csv_corruption = 0;

  /// Fraction of records made provably late (quarantined past the
  /// watermark) by faults::FaultInjector::jitter_feed.
  double feed_late_rate = 0;
  /// Uniform arrival delay bound for jitter_feed, seconds. > 0 enables
  /// jitter even when feed_late_rate == 0.
  time::Seconds feed_max_delay = 0;

  /// faults::FlakyFeed at-least-once delivery: disconnect and reorder
  /// burst rates. > 0 requires Scenario::exactly_once.
  double disconnect_rate = 0;
  double reorder_rate = 0;

  /// Every record delivered this many times back to back (>= 2 is a
  /// duplicate flood the exactly-once cursors must absorb).
  int duplicate_factor = 1;

  /// Shard death: the operator hook throws on this shard (-1 = none)...
  int kill_shard = -1;
  /// ...once the shard has integrated this many records.
  std::uint64_t kill_shard_after = 0;

  /// Kill+restore matrix (restore stage): feed fractions at which the
  /// engine is killed, checkpoint-restored and replayed from the last
  /// acknowledged feed position.
  std::vector<double> kill_points;

  /// Engine pressure knobs: quarantine retention cap and the queue/batch
  /// geometry (small queues force producer backpressure).
  std::size_t quarantine_cap = 64;
  std::size_t queue_batches = 64;
  std::size_t batch_records = 512;

  /// Negative-test sabotage: silently skip delivering one mid-feed record
  /// while still counting it as presented. Violates conservation-presented
  /// by construction — exists to prove the harness catches silent loss and
  /// to exercise the flight-recorder path.
  bool sabotage_drop = false;

  /// Distributed stage (dist::DistEngine) fault plan. Faults fire on a
  /// worker *process* by applied-record count, so every seed reproduces the
  /// same failure point. -1 = no fault on that axis.
  int dist_kill_worker = -1;            ///< worker to crash (exit mid-batch)
  std::uint64_t dist_kill_after = 0;    ///< ...after applying this many
  int dist_hang_worker = -1;            ///< worker to hang (stop responding)
  std::uint64_t dist_hang_after = 0;    ///< ...after applying this many
  /// Spawn generations the fault keeps firing in: 1 = fail once then run
  /// clean after restart; large = a restart storm until the budget decides.
  int dist_fault_generations = 1;
  /// Supervisor restart budget per worker before the shard is declared
  /// lost (0 = first death is final).
  int dist_max_restarts = 3;
  /// Routed records per worker between rolling checkpoint requests (small
  /// values keep the replay gap — and the harness run — short).
  std::uint64_t dist_checkpoint_every = 64;
};

/// One named, self-contained harness scenario.
struct Scenario {
  std::string name;
  std::string description;

  Workload workload;
  FaultPlan faults;

  int shards = 4;
  bool exactly_once = false;
  time::Seconds allowed_lateness = 300;

  /// Stages to execute.
  bool run_batch = true;
  bool run_stream = true;
  bool run_restore = false;  ///< requires exactly_once + a flaky feed

  /// Check batch/stream parity (against the survivors minus the provably
  /// late set). Off for scenarios that lose records by design (shard
  /// death).
  bool check_parity = true;
  /// The scenario is *supposed* to degrade shards; coverage accounting is
  /// then asserted lossy, not clean.
  bool expect_degraded = false;
  /// Run the stream stage twice and require bitwise-identical reports.
  bool check_rerun_determinism = false;
  /// Mid-run checkpoint -> restore into a fresh engine -> re-checkpoint
  /// must re-encode to identical bytes.
  bool check_checkpoint_idempotence = false;
  /// Round-trip the lenient dataset through the CCDR2 columnar format and
  /// require both the materialized round trip and the out-of-core columnar
  /// sweep to reproduce every batch figure bitwise.
  bool check_columnar = false;
  /// Run the distributed stage: drive a dist::DistEngine (one worker
  /// process per shard under supervision) through the same delivery plan
  /// and hold it to dist-parity / dist-supervision. Requires run_stream
  /// (the in-process report is the parity reference).
  bool run_dist = false;
  /// The dist fault plan is *supposed* to exhaust the restart budget: the
  /// shard must be declared lost, conservation must still close, and
  /// checkpoint() must refuse.
  bool dist_expect_lost = false;
};

/// The shipped scenario pack (~10 scenarios; see file comment).
[[nodiscard]] const std::vector<Scenario>& named_scenarios();

/// The distributed pack: dist::DistEngine scenarios (baseline parity,
/// worker kill/hang recovery, restart storm, zero-budget loss). Separate
/// from named_scenarios so the core pack stays process-free; harness_run
/// selects it with --pack dist.
[[nodiscard]] const std::vector<Scenario>& dist_scenarios();

/// Looks up a shipped scenario by name across both packs; nullptr when
/// unknown.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// Serializes (scenario, seed) as deterministic `key=value` lines — the
/// flight-recorder format. parse() round-trips it exactly.
[[nodiscard]] std::string serialize_scenario(const Scenario& scenario,
                                             std::uint64_t seed);

struct ParsedScenario {
  Scenario scenario;
  std::uint64_t seed = 0;
};

/// Parses serialize_scenario output. Unknown keys and malformed values are
/// errors (a replay bundle must not half-load): returns nullopt and fills
/// `error`.
[[nodiscard]] std::optional<ParsedScenario> parse_scenario(
    std::string_view text, std::string* error = nullptr);

}  // namespace ccms::harness
