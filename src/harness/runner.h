// The scenario runner: executes one declarative Scenario end to end and
// checks every registered invariant that applies at each stage.
//
// run_scenario is a pure function of (scenario, seed): it simulates the
// workload, applies the fault plan, drives the batch pipeline, the stream
// engine and (optionally) the kill+restore matrix, and returns every
// CheckResult plus the checkpoint images the restore stage produced. The
// same inputs reproduce the same result bit for bit — the property the
// flight recorder (harness/replay.h) turns into a replayable bundle.
//
// run_pack crosses a scenario list with a seed list; summary_json renders
// the outcome as harness_summary.json (schema: bench/BENCH_SCHEMA.md).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "harness/invariants.h"
#include "harness/scenario.h"

namespace ccms::harness {

/// The outcome of one (scenario, seed) run.
struct ScenarioResult {
  std::string scenario;
  std::uint64_t seed = 0;

  /// Every invariant check evaluated, in execution order.
  std::vector<CheckResult> checks;

  /// Workload telemetry for the summary: simulated records, stream
  /// deliveries (incl. at-least-once re-deliveries) and injected CSV
  /// faults.
  std::uint64_t records = 0;
  std::uint64_t stream_deliveries = 0;
  std::uint64_t injected_faults = 0;
  double wall_s = 0;

  /// Encoded checkpoint images from the restore stage (one per kill point,
  /// in kill-point order) — recorded into replay bundles so a replay can
  /// assert bitwise-identical engine state, not just an equal verdict.
  std::vector<std::vector<std::uint8_t>> checkpoint_images;

  [[nodiscard]] bool pass() const;
  [[nodiscard]] std::size_t failures() const;
  /// First failing check, or nullptr when green.
  [[nodiscard]] const CheckResult* first_failure() const;
};

/// Runs one scenario under one seed. Deterministic: equal inputs produce an
/// equal ScenarioResult (including checkpoint image bytes).
[[nodiscard]] ScenarioResult run_scenario(const Scenario& scenario,
                                          std::uint64_t seed);

/// A scenario pack crossed with a seed list.
struct HarnessSummary {
  std::vector<ScenarioResult> results;

  [[nodiscard]] bool pass() const;
  [[nodiscard]] std::size_t total_checks() const;
  [[nodiscard]] std::size_t total_failures() const;
};

[[nodiscard]] HarnessSummary run_pack(std::span<const Scenario> scenarios,
                                      std::span<const std::uint64_t> seeds);

/// Renders a summary as the harness_summary.json document (schema
/// "ccms-harness-summary-v1"; see bench/BENCH_SCHEMA.md): top-level verdict,
/// per-invariant rollup, per-run results with violation details.
[[nodiscard]] std::string summary_json(const HarnessSummary& summary);

}  // namespace ccms::harness
