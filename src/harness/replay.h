// The flight recorder: replay bundles for invariant violations.
//
// When a scenario run violates an invariant, the harness writes a bundle
// directory holding everything needed to reproduce the failure bit for bit:
//
//   scenario.txt        serialize_scenario(scenario, seed) — the complete
//                       declarative input (workload, fault plan, stages)
//   violation.txt       the first failing check: invariant, stage, detail
//   checkpoint_<i>.bin  encoded engine checkpoints the restore stage
//                       produced, in kill-point order (absent otherwise)
//
// replay_bundle() re-runs the scenario from the bundle alone and verifies
// the same violation reappears with an identical signature (invariant,
// stage, detail) and that every re-derived checkpoint image is byte-equal
// to the recorded one — run_scenario is a pure function of (scenario,
// seed), so a divergence means the *code* changed, not the inputs. The
// harness_replay CLI wraps this for CI artifacts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "harness/scenario.h"

namespace ccms::harness {

struct ReplayBundle {
  Scenario scenario;
  std::uint64_t seed = 0;
  CheckResult violation;  ///< the recorded first failure
  std::vector<std::vector<std::uint8_t>> checkpoint_images;
};

/// Writes the bundle for `result` (which must have a failing check) into
/// `dir`, creating it. Returns the directory path. Throws util::CsvError on
/// I/O failure, std::logic_error if `result` has no failure.
std::string write_bundle(const std::string& dir, const Scenario& scenario,
                         const ScenarioResult& result);

/// Loads a bundle directory. Strict: a missing or malformed file returns
/// nullopt and fills `error` — a replay bundle must not half-load.
[[nodiscard]] std::optional<ReplayBundle> load_bundle(
    const std::string& dir, std::string* error = nullptr);

struct ReplayOutcome {
  ScenarioResult result;  ///< the fresh re-run
  /// The re-run failed the same (invariant, stage) with an identical
  /// detail string.
  bool violation_reproduced = false;
  /// Every recorded checkpoint image was re-derived byte-identically.
  bool checkpoints_identical = false;

  [[nodiscard]] bool reproduced() const {
    return violation_reproduced && checkpoints_identical;
  }
};

/// Re-runs the bundle's scenario and compares against the recorded failure.
[[nodiscard]] ReplayOutcome replay_bundle(const ReplayBundle& bundle);

}  // namespace ccms::harness
