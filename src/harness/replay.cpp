#include "harness/replay.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/csv.h"

namespace ccms::harness {
namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw util::CsvError("cannot open " + path.string());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) throw util::CsvError("write failed: " + path.string());
}

bool read_file(const fs::path& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  bytes = buffer.str();
  return in.good() || in.eof();
}

std::string checkpoint_name(std::size_t index) {
  return "checkpoint_" + std::to_string(index) + ".bin";
}

/// violation.txt: three `key=value` lines. The detail is single-line by
/// construction (the runner never embeds newlines in check details).
std::string serialize_violation(const CheckResult& violation) {
  return "invariant=" + violation.invariant + "\nstage=" + violation.stage +
         "\ndetail=" + violation.detail + "\n";
}

bool parse_violation(const std::string& text, CheckResult& violation,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  bool have_invariant = false;
  bool have_stage = false;
  bool have_detail = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "violation.txt: malformed line: " + line;
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "invariant") {
      violation.invariant = value;
      have_invariant = true;
    } else if (key == "stage") {
      violation.stage = value;
      have_stage = true;
    } else if (key == "detail") {
      violation.detail = value;
      have_detail = true;
    } else {
      if (error != nullptr) *error = "violation.txt: unknown key: " + key;
      return false;
    }
  }
  if (!have_invariant || !have_stage || !have_detail) {
    if (error != nullptr) *error = "violation.txt: missing field";
    return false;
  }
  violation.pass = false;
  return true;
}

}  // namespace

std::string write_bundle(const std::string& dir, const Scenario& scenario,
                         const ScenarioResult& result) {
  const CheckResult* failure = result.first_failure();
  if (failure == nullptr) {
    throw std::logic_error("write_bundle: result has no failing check");
  }
  const fs::path root(dir);
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) throw util::CsvError("cannot create " + root.string());

  write_file(root / "scenario.txt",
             serialize_scenario(scenario, result.seed));
  write_file(root / "violation.txt", serialize_violation(*failure));
  for (std::size_t i = 0; i < result.checkpoint_images.size(); ++i) {
    const std::vector<std::uint8_t>& image = result.checkpoint_images[i];
    write_file(root / checkpoint_name(i),
               std::string_view(reinterpret_cast<const char*>(image.data()),
                                image.size()));
  }
  return root.string();
}

std::optional<ReplayBundle> load_bundle(const std::string& dir,
                                        std::string* error) {
  const fs::path root(dir);
  ReplayBundle bundle;

  std::string scenario_text;
  if (!read_file(root / "scenario.txt", scenario_text)) {
    if (error != nullptr) *error = "cannot read scenario.txt in " + dir;
    return std::nullopt;
  }
  const std::optional<ParsedScenario> parsed =
      parse_scenario(scenario_text, error);
  if (!parsed.has_value()) return std::nullopt;
  bundle.scenario = parsed->scenario;
  bundle.seed = parsed->seed;

  std::string violation_text;
  if (!read_file(root / "violation.txt", violation_text)) {
    if (error != nullptr) *error = "cannot read violation.txt in " + dir;
    return std::nullopt;
  }
  if (!parse_violation(violation_text, bundle.violation, error)) {
    return std::nullopt;
  }

  for (std::size_t i = 0;; ++i) {
    const fs::path path = root / checkpoint_name(i);
    if (!fs::exists(path)) break;
    std::string bytes;
    if (!read_file(path, bytes)) {
      if (error != nullptr) *error = "cannot read " + path.string();
      return std::nullopt;
    }
    bundle.checkpoint_images.emplace_back(bytes.begin(), bytes.end());
  }
  return bundle;
}

ReplayOutcome replay_bundle(const ReplayBundle& bundle) {
  ReplayOutcome outcome;
  outcome.result = run_scenario(bundle.scenario, bundle.seed);

  const CheckResult* failure = outcome.result.first_failure();
  outcome.violation_reproduced =
      failure != nullptr && failure->invariant == bundle.violation.invariant &&
      failure->stage == bundle.violation.stage &&
      failure->detail == bundle.violation.detail;

  // Checkpoint images are compared positionally: the recorded run and the
  // replay execute the same kill-point list in the same order.
  outcome.checkpoints_identical =
      outcome.result.checkpoint_images.size() ==
      bundle.checkpoint_images.size();
  for (std::size_t i = 0;
       outcome.checkpoints_identical && i < bundle.checkpoint_images.size();
       ++i) {
    outcome.checkpoints_identical =
        outcome.result.checkpoint_images[i] == bundle.checkpoint_images[i];
  }
  return outcome;
}

}  // namespace ccms::harness
