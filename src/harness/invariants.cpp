#include "harness/invariants.h"

#include <cstdio>
#include <cstdlib>

namespace ccms::harness {

const std::vector<InvariantInfo>& invariant_registry() {
  static const std::vector<InvariantInfo> registry = {
      {"conservation-presented",
       "every record presented to the engine is offered to it: "
       "engine.records_offered == records the harness delivered",
       "the 1.1B-connection census is complete: no silent loss between "
       "collection and accounting"},
      {"conservation-routed",
       "routed == integrated + reorder-pending + degraded-lost, at every "
       "snapshot and at finish",
       "every accepted connection is attributed to analysis, a window or an "
       "explicit loss — never vanishes"},
      {"ingest-partition",
       "rows_read == accepted + dropped + deduplicated, and bytes consumed "
       "equal the input",
       "§3's record counts: ingest accounting tiles the raw telemetry "
       "exactly"},
      {"clean-partition",
       "clean input == survivors + removed (batch); == routed + late + "
       "removed (stream)",
       "§3's cleaning statistics (1-hour artifacts, implausible durations) "
       "are exact, not sampled"},
      {"fault-detection-exact",
       "lenient ingest detects exactly the injected fault counts, per class",
       "robustness claims are measurable: detected == injected under known "
       "corruption"},
      {"quarantine-bounded",
       "retained quarantine entries <= cap and entries + overflow == drops",
       "hostile input cannot exhaust memory while every drop stays counted"},
      {"watermark-monotone",
       "the engine watermark never decreases across snapshots",
       "streaming §4 analyses see time move forward; late data is "
       "quarantined, not time-travelled"},
      {"late-exact",
       "records quarantined as late == the provably-late set of the feed "
       "(0 for lateness-safe feeds)",
       "out-of-order telemetry is bounded and fully accounted, per the "
       "allowed-lateness contract"},
      {"exactly-once",
       "replayed-duplicate drops == known duplicate deliveries; the report "
       "equals a single-delivery run's",
       "at-least-once collection pipelines cannot double-count connections"},
      {"batch-stream-parity",
       "stream snapshot == batch study over the same records for every "
       "exact field (ParityReport)",
       "§4 figures are identical whether computed offline or live"},
      {"p2-error-bound",
       "the constant-memory P2 median estimate is within 1% of the exact "
       "median",
       "Fig 9 at full national scale (no per-record sample) stays within "
       "the stated error"},
      {"checkpoint-idempotent",
       "checkpoint -> restore -> checkpoint re-encodes to identical bytes",
       "a resume point is a faithful image of the engine, not an "
       "approximation"},
      {"restore-replay-identical",
       "kill + restore + replay-from-last-ack is bitwise identical to an "
       "uninterrupted run",
       "crash recovery never changes a published figure"},
      {"coverage-accounting",
       "coverage_fraction == 1 - lost/routed; healthy runs report no "
       "degraded shards, expected-degraded runs report them",
       "partial failures are visible in the report, never hidden in the "
       "denominators"},
      {"report-shape",
       "presence/connected-time fractions in [0,1], days-per-car within the "
       "study horizon",
       "published distributions stay inside their defining ranges under any "
       "fault mix"},
      {"rerun-determinism",
       "the same (scenario, seed) produces a bitwise-identical stream "
       "report",
       "every figure is reproducible from config + seed — the flight "
       "recorder's precondition"},
      {"columnar-roundtrip",
       "read_columnar(write_columnar(ds)) and the out-of-core columnar "
       "sweep reproduce every batch StudyReport field bitwise",
       "the paper-scale batch path (1M cars x 90 days on one box) computes "
       "the same figures as the in-memory study"},
      {"dist-parity",
       "a distributed run (worker processes over sockets, including kills, "
       "hangs and restarts within budget) produces a StreamReport bitwise "
       "identical to the in-process engine over the same feed",
       "scale-out and crash recovery never change a published figure"},
      {"dist-supervision",
       "supervision telemetry matches the fault plan exactly: restarts and "
       "gap replay occur iff faults were injected, an exhausted budget "
       "degrades to a declared lost shard (conservation still closes, "
       "checkpoint() refuses), and the wire stays protocol-clean",
       "partial infrastructure failure is a measured, first-class outcome, "
       "never a silent gap in the census"},
  };
  return registry;
}

const InvariantInfo* find_invariant(std::string_view name) {
  for (const InvariantInfo& info : invariant_registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

void Checker::check(std::string_view invariant, std::string_view stage,
                    bool pass, std::string detail) {
  if (find_invariant(invariant) == nullptr) {
    std::fprintf(stderr,
                 "harness bug: check against unregistered invariant '%.*s'\n",
                 static_cast<int>(invariant.size()), invariant.data());
    std::abort();
  }
  CheckResult result;
  result.invariant = std::string(invariant);
  result.stage = std::string(stage);
  result.pass = pass;
  result.detail = std::move(detail);
  results_.push_back(std::move(result));
}

bool Checker::all_passed() const {
  for (const CheckResult& r : results_) {
    if (!r.pass) return false;
  }
  return true;
}

const CheckResult* Checker::first_failure() const {
  for (const CheckResult& r : results_) {
    if (!r.pass) return &r;
  }
  return nullptr;
}

}  // namespace ccms::harness
