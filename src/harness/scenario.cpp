#include "harness/scenario.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ccms::harness {

namespace {

Scenario clean_baseline() {
  Scenario s;
  s.name = "clean-baseline";
  s.description =
      "pristine workload, canonical feed: every conservation law, exact "
      "batch/stream parity, rerun determinism, checkpoint idempotence";
  s.check_rerun_determinism = true;
  s.check_checkpoint_idempotence = true;
  return s;
}

Scenario corruption_sweep() {
  Scenario s;
  s.name = "corruption-sweep";
  s.description =
      "2% CSV corruption, even mix of every fault class: lenient ingest "
      "detects exactly what was injected; survivors keep batch/stream parity";
  s.faults.csv_corruption = 0.02;
  return s;
}

Scenario out_of_order_burst() {
  Scenario s;
  s.name = "out-of-order-burst";
  s.description =
      "jittered arrival order with a provably-late tail: the watermark "
      "quarantines exactly the known late set, nothing else";
  s.faults.feed_late_rate = 0.05;
  s.faults.feed_max_delay = 240;
  return s;
}

Scenario flaky_feed() {
  Scenario s;
  s.name = "flaky-feed";
  s.description =
      "at-least-once delivery with disconnects and reorder bursts: the "
      "exactly-once cursors absorb every duplicate, parity is untouched";
  s.faults.disconnect_rate = 0.03;
  s.faults.reorder_rate = 0.06;
  s.exactly_once = true;
  return s;
}

Scenario shard_death_under_load() {
  Scenario s;
  s.name = "shard-death-under-load";
  s.description =
      "one shard's operator dies mid-stream under backpressure: the engine "
      "degrades instead of crashing and accounts every lost record "
      "(routed == integrated + pending + lost)";
  s.faults.kill_shard = 1;
  s.faults.kill_shard_after = 200;
  s.faults.queue_batches = 2;   // small queue: producer feels backpressure
  s.faults.batch_records = 32;
  s.check_parity = false;  // a degraded stream is lossy by design
  s.expect_degraded = true;
  return s;
}

Scenario kill_restore_matrix() {
  Scenario s;
  s.name = "kill-restore-matrix";
  s.description =
      "kill + checkpoint/restore at 25/50/75% of a flaky feed: every "
      "restored run is bitwise identical to the uninterrupted one";
  s.faults.disconnect_rate = 0.02;
  s.faults.reorder_rate = 0.05;
  s.faults.kill_points = {0.25, 0.5, 0.75};
  s.exactly_once = true;
  s.run_restore = true;
  s.check_checkpoint_idempotence = true;
  return s;
}

Scenario quarantine_cap_saturation() {
  Scenario s;
  s.name = "quarantine-cap-saturation";
  s.description =
      "a late flood against a tiny quarantine cap: retention stays bounded, "
      "counters keep counting, the late set is still exact";
  s.faults.feed_late_rate = 0.30;
  s.faults.quarantine_cap = 8;
  return s;
}

Scenario duplicate_flood() {
  Scenario s;
  s.name = "duplicate-flood";
  s.description =
      "every record delivered three times: the exactly-once cursors drop "
      "precisely the redundant deliveries before any accounting";
  s.faults.duplicate_factor = 3;
  s.exactly_once = true;
  return s;
}

Scenario batch_1m_out_of_core() {
  Scenario s;
  s.name = "batch-1m-out-of-core";
  s.description =
      "paper-scale batch (1M cars x 90 days) through the CCDR2 columnar "
      "path: the out-of-core sweep reproduces the in-memory study bitwise";
  s.workload.cars = 1000000;
  s.workload.days = 90;
  s.workload.grid = 64;
  s.run_stream = false;
  s.check_parity = false;
  s.check_columnar = true;
  return s;
}

Scenario batch_50k_out_of_core() {
  Scenario s;
  s.name = "batch-50k-out-of-core";
  s.description =
      "downsized out-of-core batch (50k cars x 30 days): the CI-scale "
      "version of batch-1m-out-of-core, same columnar round-trip contract";
  s.workload.cars = 50000;
  s.workload.days = 30;
  s.workload.grid = 32;
  s.run_stream = false;
  s.check_parity = false;
  s.check_columnar = true;
  return s;
}

/// Shared shape of the distributed scenarios: a lean workload (the dist
/// stage forks one process per shard and ships every record over a socket,
/// so the pack stays CI-sized), stream + dist stages only, parity judged
/// against the in-process engine rather than the batch study.
Scenario dist_base() {
  Scenario s;
  s.workload.cars = 96;
  s.workload.days = 7;
  s.workload.grid = 8;
  s.shards = 2;
  s.run_batch = false;
  s.check_parity = false;
  s.run_dist = true;
  return s;
}

Scenario dist_baseline() {
  Scenario s = dist_base();
  s.name = "dist-baseline";
  s.description =
      "fault-free distributed run, one worker process per shard: the "
      "DistEngine report is bitwise identical to the in-process engine and "
      "the supervisor restarts nothing";
  return s;
}

Scenario dist_worker_kill() {
  Scenario s = dist_base();
  s.name = "dist-worker-kill";
  s.description =
      "worker 1 crashes mid-batch after 150 applied records: the supervisor "
      "restarts it from the last rolling checkpoint, replays the gap, and "
      "the recovered report is bitwise identical to an uninterrupted run";
  s.faults.dist_kill_worker = 1;
  s.faults.dist_kill_after = 150;
  return s;
}

Scenario dist_worker_hang() {
  Scenario s = dist_base();
  s.name = "dist-worker-hang";
  s.description =
      "worker 0 stops responding after 100 applied records: the heartbeat "
      "deadline declares it hung, SIGKILL + restart + gap replay recover to "
      "the identical report (budget generous so sanitizer timing cannot "
      "flip the outcome)";
  s.faults.dist_hang_worker = 0;
  s.faults.dist_hang_after = 100;
  s.faults.dist_max_restarts = 6;
  return s;
}

Scenario dist_restart_storm() {
  Scenario s = dist_base();
  s.name = "dist-restart-storm";
  s.description =
      "worker 1 crashes in every generation: the supervisor burns the whole "
      "restart budget (exactly max_restarts restarts), then degrades — the "
      "shard is lost, conservation still closes, checkpoint() refuses";
  s.faults.dist_kill_worker = 1;
  s.faults.dist_kill_after = 80;
  s.faults.dist_fault_generations = 1000;
  s.faults.dist_max_restarts = 2;
  s.dist_expect_lost = true;
  return s;
}

Scenario dist_worker_lost() {
  Scenario s = dist_base();
  s.name = "dist-worker-lost";
  s.description =
      "zero restart budget: the first worker death is final — the shard "
      "degrades immediately with every routed record accounted as lost and "
      "coverage_fraction telling the truth";
  s.shards = 3;
  s.faults.dist_kill_worker = 2;
  s.faults.dist_kill_after = 60;
  s.faults.dist_fault_generations = 1000;
  s.faults.dist_max_restarts = 0;
  s.dist_expect_lost = true;
  return s;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const std::vector<Scenario>& named_scenarios() {
  static const std::vector<Scenario> pack = {
      clean_baseline(),       corruption_sweep(),
      out_of_order_burst(),   flaky_feed(),
      shard_death_under_load(), kill_restore_matrix(),
      quarantine_cap_saturation(), duplicate_flood(),
      batch_1m_out_of_core(), batch_50k_out_of_core(),
  };
  return pack;
}

const std::vector<Scenario>& dist_scenarios() {
  static const std::vector<Scenario> pack = {
      dist_baseline(),      dist_worker_kill(), dist_worker_hang(),
      dist_restart_storm(), dist_worker_lost(),
  };
  return pack;
}

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : named_scenarios()) {
    if (s.name == name) return &s;
  }
  for (const Scenario& s : dist_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string serialize_scenario(const Scenario& s, std::uint64_t seed) {
  std::ostringstream out;
  out << "format=ccms-harness-scenario-v1\n";
  out << "name=" << s.name << "\n";
  out << "seed=" << seed << "\n";
  out << "cars=" << s.workload.cars << "\n";
  out << "days=" << s.workload.days << "\n";
  out << "grid=" << s.workload.grid << "\n";
  out << "pristine=" << (s.workload.pristine ? 1 : 0) << "\n";
  out << "shards=" << s.shards << "\n";
  out << "exactly_once=" << (s.exactly_once ? 1 : 0) << "\n";
  out << "allowed_lateness=" << s.allowed_lateness << "\n";
  out << "csv_corruption=" << fmt_double(s.faults.csv_corruption) << "\n";
  out << "feed_late_rate=" << fmt_double(s.faults.feed_late_rate) << "\n";
  out << "feed_max_delay=" << s.faults.feed_max_delay << "\n";
  out << "disconnect_rate=" << fmt_double(s.faults.disconnect_rate) << "\n";
  out << "reorder_rate=" << fmt_double(s.faults.reorder_rate) << "\n";
  out << "duplicate_factor=" << s.faults.duplicate_factor << "\n";
  out << "kill_shard=" << s.faults.kill_shard << "\n";
  out << "kill_shard_after=" << s.faults.kill_shard_after << "\n";
  out << "kill_points=";
  for (std::size_t i = 0; i < s.faults.kill_points.size(); ++i) {
    if (i > 0) out << ";";
    out << fmt_double(s.faults.kill_points[i]);
  }
  out << "\n";
  out << "quarantine_cap=" << s.faults.quarantine_cap << "\n";
  out << "queue_batches=" << s.faults.queue_batches << "\n";
  out << "batch_records=" << s.faults.batch_records << "\n";
  out << "sabotage_drop=" << (s.faults.sabotage_drop ? 1 : 0) << "\n";
  out << "dist_kill_worker=" << s.faults.dist_kill_worker << "\n";
  out << "dist_kill_after=" << s.faults.dist_kill_after << "\n";
  out << "dist_hang_worker=" << s.faults.dist_hang_worker << "\n";
  out << "dist_hang_after=" << s.faults.dist_hang_after << "\n";
  out << "dist_fault_generations=" << s.faults.dist_fault_generations << "\n";
  out << "dist_max_restarts=" << s.faults.dist_max_restarts << "\n";
  out << "dist_checkpoint_every=" << s.faults.dist_checkpoint_every << "\n";
  out << "run_batch=" << (s.run_batch ? 1 : 0) << "\n";
  out << "run_stream=" << (s.run_stream ? 1 : 0) << "\n";
  out << "run_restore=" << (s.run_restore ? 1 : 0) << "\n";
  out << "check_parity=" << (s.check_parity ? 1 : 0) << "\n";
  out << "expect_degraded=" << (s.expect_degraded ? 1 : 0) << "\n";
  out << "check_rerun_determinism=" << (s.check_rerun_determinism ? 1 : 0)
      << "\n";
  out << "check_checkpoint_idempotence="
      << (s.check_checkpoint_idempotence ? 1 : 0) << "\n";
  out << "check_columnar=" << (s.check_columnar ? 1 : 0) << "\n";
  out << "run_dist=" << (s.run_dist ? 1 : 0) << "\n";
  out << "dist_expect_lost=" << (s.dist_expect_lost ? 1 : 0) << "\n";
  out << "description=" << s.description << "\n";
  return out.str();
}

namespace {

bool parse_u64(std::string_view v, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && ptr == v.data() + v.size();
}

bool parse_i64(std::string_view v, std::int64_t& out) {
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  return ec == std::errc() && ptr == v.data() + v.size();
}

bool parse_double(std::string_view v, double& out) {
  // std::from_chars<double> is unavailable on some libstdc++ configurations;
  // strtod on a bounded copy is equivalent for our own serialized output.
  const std::string copy(v);
  char* end = nullptr;
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size() && !copy.empty();
}

bool parse_bool(std::string_view v, bool& out) {
  if (v == "0") { out = false; return true; }
  if (v == "1") { out = true; return true; }
  return false;
}

}  // namespace

std::optional<ParsedScenario> parse_scenario(std::string_view text,
                                             std::string* error) {
  ParsedScenario parsed;
  Scenario& s = parsed.scenario;
  bool saw_format = false;

  auto fail = [&](const std::string& why) -> std::optional<ParsedScenario> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("malformed line (no '='): " + std::string(line));
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);

    bool ok = true;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double d = 0;
    if (key == "format") {
      saw_format = value == "ccms-harness-scenario-v1";
      ok = saw_format;
    } else if (key == "name") {
      s.name = std::string(value);
    } else if (key == "description") {
      s.description = std::string(value);
    } else if (key == "seed") {
      ok = parse_u64(value, parsed.seed);
    } else if (key == "cars") {
      ok = parse_u64(value, u);
      s.workload.cars = static_cast<std::uint32_t>(u);
    } else if (key == "days") {
      ok = parse_i64(value, i);
      s.workload.days = static_cast<int>(i);
    } else if (key == "grid") {
      ok = parse_i64(value, i);
      s.workload.grid = static_cast<int>(i);
    } else if (key == "pristine") {
      ok = parse_bool(value, s.workload.pristine);
    } else if (key == "shards") {
      ok = parse_i64(value, i);
      s.shards = static_cast<int>(i);
    } else if (key == "exactly_once") {
      ok = parse_bool(value, s.exactly_once);
    } else if (key == "allowed_lateness") {
      ok = parse_i64(value, i);
      s.allowed_lateness = i;
    } else if (key == "csv_corruption") {
      ok = parse_double(value, s.faults.csv_corruption);
    } else if (key == "feed_late_rate") {
      ok = parse_double(value, s.faults.feed_late_rate);
    } else if (key == "feed_max_delay") {
      ok = parse_i64(value, i);
      s.faults.feed_max_delay = i;
    } else if (key == "disconnect_rate") {
      ok = parse_double(value, s.faults.disconnect_rate);
    } else if (key == "reorder_rate") {
      ok = parse_double(value, s.faults.reorder_rate);
    } else if (key == "duplicate_factor") {
      ok = parse_i64(value, i);
      s.faults.duplicate_factor = static_cast<int>(i);
    } else if (key == "kill_shard") {
      ok = parse_i64(value, i);
      s.faults.kill_shard = static_cast<int>(i);
    } else if (key == "kill_shard_after") {
      ok = parse_u64(value, s.faults.kill_shard_after);
    } else if (key == "kill_points") {
      s.faults.kill_points.clear();
      std::size_t p = 0;
      while (p < value.size() && ok) {
        std::size_t semi = value.find(';', p);
        if (semi == std::string_view::npos) semi = value.size();
        ok = parse_double(value.substr(p, semi - p), d);
        if (ok) s.faults.kill_points.push_back(d);
        p = semi + 1;
      }
    } else if (key == "quarantine_cap") {
      ok = parse_u64(value, u);
      s.faults.quarantine_cap = static_cast<std::size_t>(u);
    } else if (key == "queue_batches") {
      ok = parse_u64(value, u);
      s.faults.queue_batches = static_cast<std::size_t>(u);
    } else if (key == "batch_records") {
      ok = parse_u64(value, u);
      s.faults.batch_records = static_cast<std::size_t>(u);
    } else if (key == "sabotage_drop") {
      ok = parse_bool(value, s.faults.sabotage_drop);
    } else if (key == "dist_kill_worker") {
      ok = parse_i64(value, i);
      s.faults.dist_kill_worker = static_cast<int>(i);
    } else if (key == "dist_kill_after") {
      ok = parse_u64(value, s.faults.dist_kill_after);
    } else if (key == "dist_hang_worker") {
      ok = parse_i64(value, i);
      s.faults.dist_hang_worker = static_cast<int>(i);
    } else if (key == "dist_hang_after") {
      ok = parse_u64(value, s.faults.dist_hang_after);
    } else if (key == "dist_fault_generations") {
      ok = parse_i64(value, i);
      s.faults.dist_fault_generations = static_cast<int>(i);
    } else if (key == "dist_max_restarts") {
      ok = parse_i64(value, i);
      s.faults.dist_max_restarts = static_cast<int>(i);
    } else if (key == "dist_checkpoint_every") {
      ok = parse_u64(value, s.faults.dist_checkpoint_every);
    } else if (key == "run_batch") {
      ok = parse_bool(value, s.run_batch);
    } else if (key == "run_stream") {
      ok = parse_bool(value, s.run_stream);
    } else if (key == "run_restore") {
      ok = parse_bool(value, s.run_restore);
    } else if (key == "check_parity") {
      ok = parse_bool(value, s.check_parity);
    } else if (key == "expect_degraded") {
      ok = parse_bool(value, s.expect_degraded);
    } else if (key == "check_rerun_determinism") {
      ok = parse_bool(value, s.check_rerun_determinism);
    } else if (key == "check_checkpoint_idempotence") {
      ok = parse_bool(value, s.check_checkpoint_idempotence);
    } else if (key == "check_columnar") {
      ok = parse_bool(value, s.check_columnar);
    } else if (key == "run_dist") {
      ok = parse_bool(value, s.run_dist);
    } else if (key == "dist_expect_lost") {
      ok = parse_bool(value, s.dist_expect_lost);
    } else {
      return fail("unknown key: " + std::string(key));
    }
    if (!ok) {
      return fail("malformed value for " + std::string(key) + ": " +
                  std::string(value));
    }
  }
  if (!saw_format) return fail("missing or unsupported format line");
  if (s.name.empty()) return fail("missing scenario name");
  return parsed;
}

}  // namespace ccms::harness
