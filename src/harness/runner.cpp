#include "harness/runner.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cdr/clean.h"
#include "cdr/io.h"
#include "cdr/session.h"
#include "dist/supervisor.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "core/days_histogram.h"
#include "core/load_view.h"
#include "core/presence.h"
#include "core/study.h"
#include "core/usage_matrix.h"
#include "faults/fault_injector.h"
#include "faults/flaky_feed.h"
#include "sim/simulator.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/feed.h"
#include "stream/report.h"
#include "util/json.h"

namespace ccms::harness {
namespace {

template <typename... Parts>
std::string cat(Parts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Ack cadence for at-least-once feeds — the same interval the recovery
/// tests use. Any cadence converges to the same report (FlakyFeed's base
/// order is fixed); it only shapes how much duplicate re-delivery the
/// exactly-once cursors must absorb.
constexpr std::size_t kAckInterval = 64;

sim::SimConfig sim_config_for(const Scenario& scenario, std::uint64_t seed) {
  sim::SimConfig config = scenario.workload.pristine
                              ? sim::SimConfig::pristine()
                              : sim::SimConfig::quick();
  config.seed = seed;
  config.fleet.size = scenario.workload.cars;
  config.study_days = scenario.workload.days;
  config.topology.grid_width = scenario.workload.grid;
  config.topology.grid_height = scenario.workload.grid;
  return config;
}

enum class FeedKind { kFlaky, kJitter, kDuplicate, kPlain };

FeedKind feed_kind(const FaultPlan& faults) {
  if (faults.disconnect_rate > 0 || faults.reorder_rate > 0)
    return FeedKind::kFlaky;
  if (faults.feed_late_rate > 0 || faults.feed_max_delay > 0)
    return FeedKind::kJitter;
  if (faults.duplicate_factor > 1) return FeedKind::kDuplicate;
  return FeedKind::kPlain;
}

/// The fully materialized delivery plan: everything about the feed that is
/// fixed before the engine runs. For flaky feeds the concrete sequence is
/// produced by FlakyFeed per run (deterministic per seed); for the others
/// `sequence` is the exact push order.
struct DeliveryPlan {
  FeedKind kind = FeedKind::kPlain;
  std::vector<cdr::Connection> arrivals;  ///< canonical arrival order
  std::vector<cdr::Connection> sequence;  ///< push order (empty for flaky)
  std::vector<cdr::Connection> late;      ///< provably-late set (jitter)
  std::uint64_t planned_duplicates = 0;   ///< duplicate-flood re-deliveries
};

DeliveryPlan make_plan(const Scenario& scenario, std::uint64_t seed,
                       const stream::StreamConfig& config,
                       std::vector<cdr::Connection> arrivals) {
  DeliveryPlan plan;
  plan.kind = feed_kind(scenario.faults);
  plan.arrivals = std::move(arrivals);
  switch (plan.kind) {
    case FeedKind::kFlaky:
      break;  // sequence comes from FlakyFeed, seeded per run
    case FeedKind::kJitter: {
      // jitter_feed wants a start-sorted feed; arrival_order provides one.
      // The jitter is told the engine's clean-screen thresholds: even a
      // pristine trace can hold a natural 3600 s artifact, which must be
      // neither flagged late nor relied on as a watermark witness.
      faults::FaultInjector injector(seed ^ 0x1177u, {});
      faults::FaultInjector::FeedJitter jitter;
      if (scenario.faults.feed_max_delay > 0)
        jitter.max_delay = scenario.faults.feed_max_delay;
      jitter.late_rate = scenario.faults.feed_late_rate;
      jitter.allowed_lateness = scenario.allowed_lateness;
      jitter.artifact_duration_s = config.clean.artifact_duration_s;
      jitter.max_plausible_duration_s = config.clean.max_plausible_duration_s;
      auto jittered = injector.jitter_feed(plan.arrivals, jitter);
      plan.sequence = std::move(jittered.arrivals);
      plan.late = std::move(jittered.late);
      break;
    }
    case FeedKind::kDuplicate: {
      const int factor = scenario.faults.duplicate_factor;
      plan.sequence.reserve(plan.arrivals.size() *
                            static_cast<std::size_t>(factor));
      for (const cdr::Connection& c : plan.arrivals) {
        for (int k = 0; k < factor; ++k) plan.sequence.push_back(c);
      }
      plan.planned_duplicates =
          plan.arrivals.size() * static_cast<std::uint64_t>(factor - 1);
      break;
    }
    case FeedKind::kPlain:
      plan.sequence = plan.arrivals;
      break;
  }
  return plan;
}

faults::FlakyFeedConfig flaky_config(const Scenario& scenario) {
  faults::FlakyFeedConfig config;
  config.disconnect_rate = scenario.faults.disconnect_rate;
  config.reorder_rate = scenario.faults.reorder_rate;
  config.max_burst = 6;
  config.lateness_budget = scenario.allowed_lateness;
  return config;
}

/// Engine config for the scenario. The operator hook (when the plan kills a
/// shard) counts integrations on the target shard with a counter fresh per
/// engine, so reruns die at exactly the same record.
stream::StreamConfig stream_config_for(const Scenario& scenario,
                                       const cdr::Dataset& raw) {
  stream::StreamConfig config = stream::config_for(raw, scenario.shards);
  config.allowed_lateness = scenario.allowed_lateness;
  config.exactly_once = scenario.exactly_once;
  config.quarantine_cap = scenario.faults.quarantine_cap;
  config.queue_batches = scenario.faults.queue_batches;
  config.batch_records = scenario.faults.batch_records;
  return config;
}

void attach_kill_hook(const Scenario& scenario, stream::StreamConfig& config) {
  if (scenario.faults.kill_shard < 0) return;
  const int target = scenario.faults.kill_shard;
  const std::uint64_t after = scenario.faults.kill_shard_after;
  auto integrated = std::make_shared<std::atomic<std::uint64_t>>(0);
  config.operator_hook = [target, after, integrated](int shard,
                                                     const cdr::Connection&) {
    if (shard != target) return;
    if (integrated->fetch_add(1, std::memory_order_relaxed) >= after) {
      throw std::runtime_error("harness: injected shard death");
    }
  };
}

std::uint64_t degraded_lost(const stream::StreamReport& report) {
  std::uint64_t lost = 0;
  for (const stream::DegradedShard& d : report.degraded_shards) {
    lost += d.records_lost;
  }
  return lost;
}

void check_conservation_routed(Checker& checker, const char* stage,
                               const stream::StreamReport& report) {
  const std::uint64_t lost = degraded_lost(report);
  const std::uint64_t accounted = report.engine.records_integrated +
                                  report.engine.reorder_pending + lost;
  checker.check("conservation-routed", stage,
                report.engine.records_routed == accounted,
                cat("routed=", report.engine.records_routed,
                    " integrated=", report.engine.records_integrated,
                    " pending=", report.engine.reorder_pending,
                    " lost=", lost));
}

/// One full stream run: builds the feed per plan, drives the engine to
/// exhaustion and finish(), taking quartile snapshots for the mid-run
/// conservation / watermark checks when `checker` is set (nullptr for the
/// determinism rerun, which must only observe the final report).
struct DriveResult {
  stream::StreamReport report;
  std::uint64_t presented = 0;   ///< deliveries the feed claims it made
  std::uint64_t duplicates = 0;  ///< known re-deliveries among them
};

DriveResult run_stream_once(const Scenario& scenario, const DeliveryPlan& plan,
                            const stream::StreamConfig& base_config,
                            std::uint64_t feed_seed, Checker* checker) {
  stream::StreamConfig config = base_config;
  attach_kill_hook(scenario, config);
  stream::ShardedEngine engine(config);
  DriveResult out;

  const std::size_t total = plan.kind == FeedKind::kFlaky
                                ? plan.arrivals.size()
                                : plan.sequence.size();
  // The sabotage knob silently skips this delivery while still counting it
  // as presented — the planted violation of conservation-presented.
  const std::size_t sabotage_index =
      scenario.faults.sabotage_drop && total > 0
          ? total / 2
          : static_cast<std::size_t>(-1);
  const std::size_t snapshot_every = total >= 4 ? total / 4 : total + 1;

  std::vector<time::Seconds> watermarks;
  auto deliver = [&](const cdr::Connection& c) {
    const std::size_t index = out.presented++;
    if (index != sabotage_index) engine.push(c);
    if (checker != nullptr && out.presented % snapshot_every == 0 &&
        out.presented < total) {
      const stream::StreamReport snap = engine.snapshot();
      watermarks.push_back(snap.engine.watermark);
      check_conservation_routed(*checker, "stream", snap);
    }
  };

  if (plan.kind == FeedKind::kFlaky) {
    faults::FlakyFeed feed(plan.arrivals, feed_seed, flaky_config(scenario));
    std::size_t since_ack = 0;
    while (!feed.exhausted()) {
      deliver(feed.next());
      if (++since_ack >= kAckInterval) {
        feed.ack();
        since_ack = 0;
      }
    }
    feed.ack();
    out.duplicates = feed.duplicates();
  } else {
    for (const cdr::Connection& c : plan.sequence) deliver(c);
    out.duplicates = plan.planned_duplicates;
  }
  engine.finish();

  if (checker != nullptr && scenario.expect_degraded) {
    // A degraded engine must refuse to pose as a clean resume point.
    bool refused = false;
    try {
      (void)engine.checkpoint();
    } catch (const stream::StreamStateError&) {
      refused = true;
    }
    checker->check("coverage-accounting", "stream", refused,
                   "degraded engine must refuse checkpoint()");
  }

  out.report = engine.snapshot();
  watermarks.push_back(out.report.engine.watermark);
  if (checker != nullptr) {
    check_conservation_routed(*checker, "stream", out.report);
    bool monotone = true;
    for (std::size_t i = 1; i < watermarks.size(); ++i) {
      monotone = monotone && watermarks[i - 1] <= watermarks[i];
    }
    std::ostringstream seq;
    for (const time::Seconds w : watermarks) seq << w << " ";
    checker->check("watermark-monotone", "stream", monotone,
                   cat("snapshots=", seq.str()));
  }

  if (checker != nullptr && scenario.check_checkpoint_idempotence &&
      out.report.degraded_shards.empty() && scenario.faults.kill_shard < 0) {
    // Final-state idempotence: checkpoint -> restore into a fresh engine ->
    // re-checkpoint must re-encode to identical bytes. (The restore stage
    // covers the mid-run variant.)
    const stream::Checkpoint saved = engine.checkpoint();
    const std::vector<std::uint8_t> bytes = stream::encode(saved);
    stream::ShardedEngine fresh(base_config);
    const bool restored = fresh.restore(saved);
    const std::vector<std::uint8_t> again =
        restored ? stream::encode(fresh.checkpoint())
                 : std::vector<std::uint8_t>{};
    checker->check("checkpoint-idempotent", "stream",
                   restored && bytes == again,
                   cat("restored=", restored, " bytes=", bytes.size(),
                       " re-encoded=", again.size(),
                       " equal=", bytes == again));
  }

  return out;
}

/// The batch-side figures the stream engine claims parity with — the same
/// lightweight recipe the stream parity tests use (clustering and the other
/// heavy stages are irrelevant to the parity contract).
struct BatchBaseline {
  core::StudyReport report;
  core::Matrix24x7 usage;
  std::uint64_t sessions = 0;
};

BatchBaseline batch_baseline(const cdr::Dataset& raw) {
  BatchBaseline batch;
  const cdr::Dataset cleaned = cdr::clean(raw, {}, batch.report.clean);
  batch.report.presence = core::analyze_presence(cleaned);
  batch.report.connected_time = core::analyze_connected_time(cleaned, 600);
  batch.report.days = core::analyze_days_on_network(cleaned);
  batch.report.cell_sessions = core::analyze_cell_sessions(cleaned, 600);
  batch.usage = core::usage_matrix(cleaned.all());
  cleaned.for_each_car([&](CarId, std::span<const cdr::Connection> records) {
    batch.sessions += cdr::aggregate_sessions(records).size();
  });
  return batch;
}

/// Parity reference records: the feed minus the provably-late set the
/// engine quarantines. Exact multiset subtraction — ByCarThenStart is a
/// total order, so erase removes precisely the matching record.
cdr::Dataset parity_survivors(const cdr::Dataset& raw,
                              const DeliveryPlan& plan) {
  if (plan.late.empty()) return {};  // caller uses `raw` directly
  std::multiset<cdr::Connection, cdr::ByCarThenStart> survivors(
      plan.arrivals.begin(), plan.arrivals.end());
  for (const cdr::Connection& lost : plan.late) {
    const auto it = survivors.find(lost);
    if (it != survivors.end()) survivors.erase(it);
  }
  cdr::Dataset base;
  base.set_fleet_size(raw.fleet_size());
  base.set_study_days(raw.study_days());
  for (const cdr::Connection& c : survivors) base.add(c);
  base.finalize();
  return base;
}

void check_report_shape(Checker& checker, const char* stage,
                        const core::DailyPresence& presence,
                        double connected_mean, double connected_p995,
                        const core::DaysOnNetwork& days, int study_days) {
  bool ok = true;
  std::ostringstream why;
  auto fraction_ok = [](double f) { return f >= 0.0 && f <= 1.0; };
  for (const double f : presence.cars_fraction) ok = ok && fraction_ok(f);
  for (const double f : presence.cells_fraction) ok = ok && fraction_ok(f);
  if (!ok) why << "presence fraction outside [0,1]; ";
  if (!fraction_ok(connected_mean) || !fraction_ok(connected_p995)) {
    ok = false;
    why << "connected-time fraction outside [0,1] (mean=" << connected_mean
        << " p995=" << connected_p995 << "); ";
  }
  for (const int d : days.days_per_car) {
    if (d < 0 || d > study_days) {
      ok = false;
      why << "days_per_car " << d << " outside [0," << study_days << "]; ";
      break;
    }
  }
  checker.check("report-shape", stage, ok,
                ok ? cat("fractions bounded, days within ", study_days)
                   : why.str());
}

void run_batch_stage(const Scenario& scenario, const sim::Study& study,
                     const cdr::Dataset& raw, const cdr::IngestReport& ingest,
                     const faults::FaultLog& injected, Checker& checker) {
  const std::uint64_t dups = ingest.count(cdr::FaultClass::kDuplicateRecord);
  checker.check(
      "ingest-partition", "batch",
      ingest.rows_read ==
          ingest.records_accepted + ingest.records_dropped + dups,
      cat("rows_read=", ingest.rows_read, " accepted=",
          ingest.records_accepted, " dropped=", ingest.records_dropped,
          " deduped=", dups));

  checker.check(
      "quarantine-bounded", "batch",
      ingest.quarantine.size() <= scenario.faults.quarantine_cap &&
          ingest.quarantine.size() + ingest.quarantine_overflow ==
              ingest.total_faults(),
      cat("entries=", ingest.quarantine.size(),
          " cap=", scenario.faults.quarantine_cap,
          " overflow=", ingest.quarantine_overflow,
          " faults=", ingest.total_faults()));

  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(raw, {}, clean_report);
  checker.check(
      "clean-partition", "batch",
      clean_report.input_records == raw.size() &&
          clean_report.input_records ==
              cleaned.size() + clean_report.total_removed(),
      cat("input=", clean_report.input_records, " survivors=", cleaned.size(),
          " removed=", clean_report.total_removed()));

  if (injected.total() > 0) {
    bool exact = true;
    std::ostringstream why;
    static constexpr cdr::FaultClass kIngestDetected[] = {
        cdr::FaultClass::kTruncatedLine,    cdr::FaultClass::kBadField,
        cdr::FaultClass::kDuplicateRecord,  cdr::FaultClass::kOutOfOrderRecord,
        cdr::FaultClass::kClockSkew,        cdr::FaultClass::kNegativeDuration,
        cdr::FaultClass::kOverflowDuration, cdr::FaultClass::kUnknownCell,
    };
    // Natural exact duplicates in the simulated trace are detected by the
    // same dedup check as injected ones; like hour artifacts below, the
    // sound relation for kDuplicateRecord is a two-sided bound.
    std::uint64_t natural_dups = 0;
    {
      const std::span<const cdr::Connection> all = study.raw.all();
      for (std::size_t i = 1; i < all.size(); ++i) {
        if (all[i] == all[i - 1]) ++natural_dups;
      }
    }
    for (const cdr::FaultClass fault : kIngestDetected) {
      const std::uint64_t detected = ingest.count(fault);
      const std::uint64_t planted = injected.count(fault);
      const std::uint64_t slack =
          fault == cdr::FaultClass::kDuplicateRecord ? natural_dups : 0;
      if (detected < planted || detected > planted + slack) {
        exact = false;
        why << "class " << static_cast<int>(fault) << " detected " << detected
            << " outside [" << planted << ", " << planted + slack << "]; ";
      }
    }
    // Hour artifacts pass ingest untouched and surface in the clean stage.
    // A pristine workload has no *modelled* artifact quirk, but a car can
    // legitimately stay connected exactly 3600 s, and such a record is
    // indistinguishable from an injected artifact (and may itself be
    // destroyed by another fault class). The sound exact relation is a
    // two-sided bound: injected <= cleaned <= injected + natural.
    if (scenario.workload.pristine) {
      std::uint64_t natural = 0;
      for (const cdr::Connection& c : study.raw.all()) {
        if (c.duration_s == 3600) ++natural;
      }
      const std::uint64_t injected_hour =
          injected.count(cdr::FaultClass::kHourArtifact);
      const std::uint64_t cleaned_hour = clean_report.hour_artifacts_removed;
      if (cleaned_hour < injected_hour ||
          cleaned_hour > injected_hour + natural) {
        exact = false;
        why << "hour artifacts cleaned " << cleaned_hour << " outside ["
            << injected_hour << ", " << injected_hour + natural
            << "] (injected + natural); ";
      }
    }
    checker.check("fault-detection-exact", "batch", exact,
                  exact ? cat("all classes exact, injected=", injected.total())
                        : why.str());
  }

  core::StudyOptions options;
  options.threads = 1;
  const core::CellLoad load =
      core::CellLoad::from_background(study.background);
  const core::StudyReport report =
      core::run_study(raw, study.topology.cells(), load, options);
  check_report_shape(checker, "batch", report.presence,
                     report.connected_time.mean_full,
                     report.connected_time.p995_full, report.days,
                     raw.study_days());

  if (scenario.check_columnar) {
    // Round-trip the lenient dataset through the CCDR2 columnar format.
    // `raw` is already screened and finalize-sorted, so re-screening on
    // decode is a pure pass-through — except dedup, which would eat natural
    // exact duplicates the sort made adjacent; disable it.
    core::StudyOptions columnar_options = options;
    columnar_options.ingest.mode = cdr::ParseMode::kLenient;
    columnar_options.ingest.check_duplicates = false;
    const std::string bytes = cdr::write_columnar_buffer(raw);
    cdr::IngestReport columnar_ingest;
    const cdr::Dataset round = cdr::read_columnar_buffer(
        bytes, columnar_options.ingest, columnar_ingest, "<harness>");
    core::StudyReport via_dataset =
        core::run_study(round, study.topology.cells(), load, columnar_options);
    std::string why;
    const bool round_trip_ok =
        core::study_reports_identical(report, via_dataset, &why);
    checker.check("columnar-roundtrip", "batch", round_trip_ok,
                  round_trip_ok
                      ? cat("read(write(ds)) reproduced every figure, bytes=",
                            bytes.size())
                      : cat("materialized round trip diverged: ", why));

    // The out-of-core sweep must equal materialize + run_study including
    // the ingest accounting the decode produced.
    via_dataset.ingest = columnar_ingest;
    const core::StudyReport via_sweep = core::run_study_columnar_buffer(
        bytes, study.topology.cells(), load, columnar_options, "<harness>");
    const bool sweep_ok =
        core::study_reports_identical(via_dataset, via_sweep, &why);
    checker.check("columnar-roundtrip", "batch", sweep_ok,
                  sweep_ok ? "out-of-core sweep == materialized study"
                           : cat("out-of-core sweep diverged: ", why));
  }
}

void run_restore_stage(const Scenario& scenario, const DeliveryPlan& plan,
                       const stream::StreamConfig& base_config,
                       std::uint64_t feed_seed,
                       const stream::StreamReport& reference, Checker& checker,
                       ScenarioResult& result) {
  for (const double kill_point : scenario.faults.kill_points) {
    // First life: drive to the kill point, checkpoint, remember only what a
    // real upstream remembers — the last acknowledged feed position.
    faults::FlakyFeed first_feed(plan.arrivals, feed_seed,
                                 flaky_config(scenario));
    stream::ShardedEngine first(base_config);
    const auto kill_after = static_cast<std::uint64_t>(
        kill_point * static_cast<double>(plan.arrivals.size()));
    std::size_t since_ack = 0;
    while (!first_feed.exhausted() && first_feed.delivered() < kill_after) {
      first.push(first_feed.next());
      if (++since_ack >= kAckInterval) {
        first_feed.ack();
        since_ack = 0;
      }
    }
    const stream::Checkpoint saved = first.checkpoint();
    const std::vector<std::uint8_t> image = stream::encode(saved);
    result.checkpoint_images.push_back(image);
    const std::size_t resume_from = first_feed.acked();

    // Second life: fresh feed (same seed -> same base order) rewound to the
    // ack position, fresh engine restored from the image.
    faults::FlakyFeed second_feed(plan.arrivals, feed_seed,
                                  flaky_config(scenario));
    second_feed.rewind_to(resume_from);
    stream::ShardedEngine second(base_config);
    const bool restored = second.restore(saved);
    if (restored && scenario.check_checkpoint_idempotence) {
      const std::vector<std::uint8_t> again =
          stream::encode(second.checkpoint());
      checker.check("checkpoint-idempotent", "restore", again == image,
                    cat("kill_point=", kill_point, " bytes=", image.size(),
                        " re-encoded equal=", again == image));
    }
    std::string why;
    bool identical = false;
    if (restored) {
      std::size_t ack = 0;
      while (!second_feed.exhausted()) {
        second.push(second_feed.next());
        if (++ack >= kAckInterval) {
          second_feed.ack();
          ack = 0;
        }
      }
      second.finish();
      identical = stream::reports_identical(reference, second.snapshot(), &why);
    }
    checker.check(
        "restore-replay-identical", "restore", restored && identical,
        cat("kill_point=", kill_point, " resume_from=", resume_from,
            !restored ? " restore refused"
                      : (identical ? " identical to uninterrupted run"
                                   : cat(" first diff: ", why))));
  }
}

/// The distributed stage: the same delivery plan through a dist::DistEngine
/// (one worker process per shard under heartbeat/backoff supervision), held
/// to dist-parity against the in-process stream stage's report and to
/// dist-supervision against the scenario's fault plan. Worker faults fire
/// on applied-record counts, so a seed reproduces the identical failure
/// point; only hang *detection* involves the wall clock, and the deadline
/// is sized so a spurious kill (which recovery makes harmless anyway)
/// cannot exhaust a generous budget.
void run_dist_stage(const Scenario& scenario, const DeliveryPlan& plan,
                    const stream::StreamConfig& base_config,
                    std::uint64_t feed_seed,
                    const stream::StreamReport& reference, Checker& checker) {
  dist::DistConfig config;
  config.stream = base_config;
  config.checkpoint_every = scenario.faults.dist_checkpoint_every;
  config.max_restarts = scenario.faults.dist_max_restarts;
  if (scenario.faults.dist_kill_worker >= 0) {
    dist::WorkerFault& fault = config.faults[scenario.faults.dist_kill_worker];
    fault.crash_after = scenario.faults.dist_kill_after;
    fault.generations = scenario.faults.dist_fault_generations;
  }
  if (scenario.faults.dist_hang_worker >= 0) {
    dist::WorkerFault& fault = config.faults[scenario.faults.dist_hang_worker];
    fault.hang_after = scenario.faults.dist_hang_after;
    fault.generations = scenario.faults.dist_fault_generations;
    // Tight heartbeat keeps the hung-worker wait short; the deadline stays
    // generous enough that sanitizer scheduling cannot starve a healthy
    // worker into a storm of spurious kills.
    config.heartbeat_ms = 10;
    config.heartbeat_timeout_ms = 400;
  }

  dist::DistEngine engine(config);
  if (plan.kind == FeedKind::kFlaky) {
    faults::FlakyFeed feed(plan.arrivals, feed_seed, flaky_config(scenario));
    std::size_t since_ack = 0;
    while (!feed.exhausted()) {
      engine.push(feed.next());
      if (++since_ack >= kAckInterval) {
        feed.ack();
        since_ack = 0;
      }
    }
    feed.ack();
  } else {
    for (const cdr::Connection& c : plan.sequence) engine.push(c);
  }
  engine.finish();
  const stream::StreamReport report = engine.snapshot();

  // routed == integrated + pending + lost must close across process death.
  check_conservation_routed(checker, "dist", report);

  const bool faulted = scenario.faults.dist_kill_worker >= 0 ||
                       scenario.faults.dist_hang_worker >= 0;
  const std::string telemetry =
      cat("restarts=", engine.restarts_total(),
          " gap_replayed=", engine.gap_replayed_records(),
          " workers_lost=", engine.workers_lost(),
          " wire_faults=", engine.wire_report().total_faults());

  if (scenario.dist_expect_lost) {
    const std::uint64_t lost = degraded_lost(report);
    const std::uint64_t routed = report.engine.records_routed;
    const double expected_coverage =
        routed == 0
            ? 1.0
            : 1.0 - static_cast<double>(lost) / static_cast<double>(routed);
    checker.check("coverage-accounting", "dist",
                  !report.degraded_shards.empty() && lost > 0 &&
                      report.coverage_fraction == expected_coverage &&
                      report.coverage_fraction < 1.0,
                  cat("degraded=", report.degraded_shards.size(),
                      " lost=", lost, " coverage=", report.coverage_fraction,
                      " expected=", expected_coverage));
    // Crash-driven loss is exact: the budget burns deterministically, so
    // restarts_total equals max_restarts and the shard ends lost.
    checker.check(
        "dist-supervision", "dist",
        engine.workers_lost() == 1 &&
            engine.restarts_total() == scenario.faults.dist_max_restarts &&
            engine.wire_report().total_faults() == 0,
        telemetry);
    bool refused = false;
    try {
      (void)engine.checkpoint();
    } catch (const stream::StreamStateError&) {
      refused = true;
    }
    checker.check("dist-supervision", "dist", refused,
                  "a lossy distributed engine must refuse checkpoint()");
  } else {
    std::string why;
    const bool identical = stream::reports_identical(reference, report, &why);
    checker.check("dist-parity", "dist", identical,
                  identical ? cat("bitwise identical to in-process engine, ",
                                  telemetry)
                            : cat("first diff: ", why, " (", telemetry, ")"));
    const bool supervision_ok =
        engine.workers_lost() == 0 &&
        engine.wire_report().total_faults() == 0 &&
        (faulted ? engine.restarts_total() >= 1 &&
                       engine.gap_replayed_records() > 0
                 : engine.restarts_total() == 0);
    checker.check("dist-supervision", "dist", supervision_ok, telemetry);
  }
}

void run_stream_stage(const Scenario& scenario, std::uint64_t seed,
                      const cdr::Dataset& raw, Checker& checker,
                      ScenarioResult& result) {
  const stream::StreamConfig base_config = stream_config_for(scenario, raw);
  const DeliveryPlan plan =
      make_plan(scenario, seed, base_config, stream::arrival_order(raw));
  const std::uint64_t feed_seed = seed ^ 0xF1A6u;

  const DriveResult run =
      run_stream_once(scenario, plan, base_config, feed_seed, &checker);
  const stream::StreamReport& report = run.report;
  result.stream_deliveries = run.presented;

  checker.check("conservation-presented", "stream",
                report.engine.records_offered == run.presented,
                cat("presented=", run.presented,
                    " offered=", report.engine.records_offered));

  const std::uint64_t late =
      report.ingest.count(cdr::FaultClass::kOutOfOrderRecord);
  checker.check("late-exact", "stream", late == plan.late.size(),
                cat("quarantined=", late, " provably_late=",
                    plan.late.size()));

  if (scenario.exactly_once) {
    checker.check("exactly-once", "stream",
                  report.engine.records_replayed == run.duplicates,
                  cat("replayed=", report.engine.records_replayed,
                      " known_duplicates=", run.duplicates));
  }

  checker.check(
      "clean-partition", "stream",
      report.clean.input_records == report.clean.total_removed() +
                                        report.engine.records_routed + late,
      cat("input=", report.clean.input_records,
          " removed=", report.clean.total_removed(),
          " routed=", report.engine.records_routed, " late=", late));

  checker.check(
      "quarantine-bounded", "stream",
      report.ingest.quarantine.size() <= scenario.faults.quarantine_cap &&
          report.ingest.quarantine.size() +
                  report.ingest.quarantine_overflow ==
              report.ingest.total_faults(),
      cat("entries=", report.ingest.quarantine.size(),
          " cap=", scenario.faults.quarantine_cap,
          " overflow=", report.ingest.quarantine_overflow,
          " faults=", report.ingest.total_faults()));

  {
    const std::uint64_t lost = degraded_lost(report);
    const std::uint64_t routed = report.engine.records_routed;
    const double expected_coverage =
        routed == 0 ? 1.0
                    : 1.0 - static_cast<double>(lost) /
                                static_cast<double>(routed);
    bool ok;
    if (scenario.expect_degraded) {
      ok = !report.degraded_shards.empty() && lost > 0 &&
           report.coverage_fraction == expected_coverage &&
           report.coverage_fraction < 1.0;
    } else {
      ok = report.degraded_shards.empty() && lost == 0 &&
           report.coverage_fraction == 1.0;
    }
    checker.check("coverage-accounting", "stream", ok,
                  cat("degraded=", report.degraded_shards.size(),
                      " lost=", lost, " coverage=", report.coverage_fraction,
                      " expected=", expected_coverage));
  }

  check_report_shape(checker, "stream", report.presence,
                     report.connected_time.mean_full,
                     report.connected_time.p995_full, report.days,
                     raw.study_days());

  if (scenario.check_parity) {
    const cdr::Dataset survivors = parity_survivors(raw, plan);
    const cdr::Dataset& reference = plan.late.empty() ? raw : survivors;
    const BatchBaseline batch = batch_baseline(reference);
    const stream::ParityReport parity =
        stream::parity_against(report, batch.report, &batch.usage);
    // Exact-field parity and the P2 estimator bound are separate
    // invariants: the first must be bitwise, the second holds to 1%.
    const bool exact = parity.pass(/*p2_rel_tolerance=*/1e9) &&
                       report.sessions_closed + report.sessions_open ==
                           batch.sessions;
    checker.check(
        "batch-stream-parity", "stream", exact,
        cat("presence=", parity.presence_cars_max_delta, "/",
            parity.presence_cells_max_delta,
            " connected=", parity.connected_mean_full_delta,
            " duration=", parity.duration_median_delta,
            " usage=", parity.usage_max_delta,
            " sessions=", report.sessions_closed + report.sessions_open, "/",
            batch.sessions));
    // The P2 estimator needs sample size to converge: 1% at full workload
    // scale, 5% on small (test/smoke) feeds — the same split the stream
    // parity tests use.
    const double p2_bound =
        report.engine.records_routed >= 50000 ? 0.01 : 0.05;
    checker.check("p2-error-bound", "stream",
                  parity.p2_median_rel_error <= p2_bound,
                  cat("p2_rel_error=", parity.p2_median_rel_error,
                      " bound=", p2_bound));
  }

  if (scenario.check_rerun_determinism) {
    const DriveResult rerun =
        run_stream_once(scenario, plan, base_config, feed_seed, nullptr);
    std::string why;
    const bool identical =
        stream::reports_identical(report, rerun.report, &why);
    checker.check("rerun-determinism", "stream", identical,
                  identical ? "bitwise identical rerun"
                            : cat("first diff: ", why));
  }

  if (scenario.run_restore && plan.kind == FeedKind::kFlaky &&
      scenario.exactly_once) {
    run_restore_stage(scenario, plan, base_config, feed_seed, report, checker,
                      result);
  }

  // The distributed stage compares against this stage's report, so it only
  // makes sense when the in-process run itself was not sabotaged or killed.
  if (scenario.run_dist && scenario.faults.kill_shard < 0 &&
      !scenario.faults.sabotage_drop) {
    run_dist_stage(scenario, plan, base_config, feed_seed, report, checker);
  }
}

}  // namespace

bool ScenarioResult::pass() const {
  for (const CheckResult& c : checks) {
    if (!c.pass) return false;
  }
  return true;
}

std::size_t ScenarioResult::failures() const {
  std::size_t n = 0;
  for (const CheckResult& c : checks) {
    if (!c.pass) ++n;
  }
  return n;
}

const CheckResult* ScenarioResult::first_failure() const {
  for (const CheckResult& c : checks) {
    if (!c.pass) return &c;
  }
  return nullptr;
}

ScenarioResult run_scenario(const Scenario& scenario, std::uint64_t seed) {
  const auto started = std::chrono::steady_clock::now();
  ScenarioResult result;
  result.scenario = scenario.name;
  result.seed = seed;
  Checker checker;

  // Workload: simulate, export, corrupt, re-ingest leniently. The lenient
  // dataset is what both the batch and stream stages analyse — corruption
  // upstream must never open a gap between them.
  const sim::SimConfig sim_config = sim_config_for(scenario, seed);
  const sim::Study study = sim::simulate(sim_config);
  result.records = study.raw.size();

  faults::FaultEnv env;
  env.horizon_s = static_cast<std::int64_t>(sim_config.study_days) * 86400;
  env.cell_universe =
      static_cast<std::uint32_t>(study.topology.cells().size());

  const std::string csv = cdr::write_csv_text(study.raw);
  faults::FaultInjector injector(seed ^ 0xC0DEDu, env);
  faults::FaultInjector::CorruptedCsv corrupted;
  if (scenario.faults.csv_corruption > 0) {
    corrupted = injector.corrupt_csv(
        csv, faults::CsvFaultRates::uniform(scenario.faults.csv_corruption));
  } else {
    corrupted.text = csv;
  }
  result.injected_faults = corrupted.log.total();

  cdr::IngestOptions ingest_options;
  ingest_options.mode = cdr::ParseMode::kLenient;
  ingest_options.horizon_s = env.horizon_s;
  ingest_options.cell_universe = env.cell_universe;
  ingest_options.max_duration_s = 7 * 86400;
  ingest_options.quarantine_cap = scenario.faults.quarantine_cap;
  cdr::IngestReport ingest;
  const cdr::Dataset raw =
      cdr::read_csv_text(corrupted.text, ingest_options, ingest);

  if (scenario.run_batch) {
    run_batch_stage(scenario, study, raw, ingest, corrupted.log, checker);
  }
  if (scenario.run_stream) {
    run_stream_stage(scenario, seed, raw, checker, result);
  }

  result.checks = std::move(checker).take();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
  return result;
}

bool HarnessSummary::pass() const {
  for (const ScenarioResult& r : results) {
    if (!r.pass()) return false;
  }
  return true;
}

std::size_t HarnessSummary::total_checks() const {
  std::size_t n = 0;
  for (const ScenarioResult& r : results) n += r.checks.size();
  return n;
}

std::size_t HarnessSummary::total_failures() const {
  std::size_t n = 0;
  for (const ScenarioResult& r : results) n += r.failures();
  return n;
}

HarnessSummary run_pack(std::span<const Scenario> scenarios,
                        std::span<const std::uint64_t> seeds) {
  HarnessSummary summary;
  summary.results.reserve(scenarios.size() * seeds.size());
  for (const Scenario& scenario : scenarios) {
    for (const std::uint64_t seed : seeds) {
      summary.results.push_back(run_scenario(scenario, seed));
    }
  }
  return summary;
}

std::string summary_json(const HarnessSummary& summary) {
  util::JsonArray runs;
  for (const ScenarioResult& r : summary.results) {
    util::JsonArray violations;
    for (const CheckResult& c : r.checks) {
      if (c.pass) continue;
      violations.push(util::JsonObject{}
                          .add("invariant", c.invariant)
                          .add("stage", c.stage)
                          .add("detail", c.detail)
                          .dump());
    }
    runs.push(util::JsonObject{}
                  .add("scenario", r.scenario)
                  .add("seed", r.seed)
                  .add("records", r.records)
                  .add("stream_deliveries", r.stream_deliveries)
                  .add("injected_faults", r.injected_faults)
                  .add("checks", r.checks.size())
                  .add("failures", r.failures())
                  .add("pass", r.pass())
                  .add("wall_s", r.wall_s)
                  .raw("violations", violations.dump())
                  .dump());
  }

  // Per-invariant rollup over every run, in registry order.
  util::JsonArray rollup;
  for (const InvariantInfo& info : invariant_registry()) {
    std::size_t checks = 0;
    std::size_t failures = 0;
    for (const ScenarioResult& r : summary.results) {
      for (const CheckResult& c : r.checks) {
        if (c.invariant != info.name) continue;
        ++checks;
        if (!c.pass) ++failures;
      }
    }
    if (checks == 0) continue;
    rollup.push(util::JsonObject{}
                    .add("invariant", info.name)
                    .add("checks", checks)
                    .add("failures", failures)
                    .dump());
  }

  return util::JsonObject{}
      .add("schema", "ccms-harness-summary-v1")
      .add("runs", summary.results.size())
      .add("checks", summary.total_checks())
      .add("failures", summary.total_failures())
      .add("pass", summary.pass())
      .raw("invariants", rollup.dump())
      .raw("results", runs.dump())
      .dump();
}

}  // namespace ccms::harness
