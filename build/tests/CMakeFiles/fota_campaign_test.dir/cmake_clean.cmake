file(REMOVE_RECURSE
  "CMakeFiles/fota_campaign_test.dir/fota_campaign_test.cpp.o"
  "CMakeFiles/fota_campaign_test.dir/fota_campaign_test.cpp.o.d"
  "fota_campaign_test"
  "fota_campaign_test.pdb"
  "fota_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fota_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
