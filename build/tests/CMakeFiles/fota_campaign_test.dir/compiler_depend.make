# Empty compiler generated dependencies file for fota_campaign_test.
# This may be replaced when dependencies are built.
