file(REMOVE_RECURSE
  "CMakeFiles/core_presence_test.dir/core_presence_test.cpp.o"
  "CMakeFiles/core_presence_test.dir/core_presence_test.cpp.o.d"
  "core_presence_test"
  "core_presence_test.pdb"
  "core_presence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_presence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
