# Empty dependencies file for net_cell_test.
# This may be replaced when dependencies are built.
