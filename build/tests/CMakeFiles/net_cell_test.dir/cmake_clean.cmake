file(REMOVE_RECURSE
  "CMakeFiles/net_cell_test.dir/net_cell_test.cpp.o"
  "CMakeFiles/net_cell_test.dir/net_cell_test.cpp.o.d"
  "net_cell_test"
  "net_cell_test.pdb"
  "net_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
