# Empty compiler generated dependencies file for fleet_reference_devices_test.
# This may be replaced when dependencies are built.
