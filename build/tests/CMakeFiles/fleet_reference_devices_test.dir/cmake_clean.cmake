file(REMOVE_RECURSE
  "CMakeFiles/fleet_reference_devices_test.dir/fleet_reference_devices_test.cpp.o"
  "CMakeFiles/fleet_reference_devices_test.dir/fleet_reference_devices_test.cpp.o.d"
  "fleet_reference_devices_test"
  "fleet_reference_devices_test.pdb"
  "fleet_reference_devices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_reference_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
