file(REMOVE_RECURSE
  "CMakeFiles/cdr_anonymize_test.dir/cdr_anonymize_test.cpp.o"
  "CMakeFiles/cdr_anonymize_test.dir/cdr_anonymize_test.cpp.o.d"
  "cdr_anonymize_test"
  "cdr_anonymize_test.pdb"
  "cdr_anonymize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_anonymize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
