# Empty compiler generated dependencies file for cdr_anonymize_test.
# This may be replaced when dependencies are built.
