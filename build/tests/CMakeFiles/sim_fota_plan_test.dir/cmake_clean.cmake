file(REMOVE_RECURSE
  "CMakeFiles/sim_fota_plan_test.dir/sim_fota_plan_test.cpp.o"
  "CMakeFiles/sim_fota_plan_test.dir/sim_fota_plan_test.cpp.o.d"
  "sim_fota_plan_test"
  "sim_fota_plan_test.pdb"
  "sim_fota_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fota_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
