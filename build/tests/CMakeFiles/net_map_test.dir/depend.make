# Empty dependencies file for net_map_test.
# This may be replaced when dependencies are built.
