file(REMOVE_RECURSE
  "CMakeFiles/net_map_test.dir/net_map_test.cpp.o"
  "CMakeFiles/net_map_test.dir/net_map_test.cpp.o.d"
  "net_map_test"
  "net_map_test.pdb"
  "net_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
