file(REMOVE_RECURSE
  "CMakeFiles/stats_week_grid_test.dir/stats_week_grid_test.cpp.o"
  "CMakeFiles/stats_week_grid_test.dir/stats_week_grid_test.cpp.o.d"
  "stats_week_grid_test"
  "stats_week_grid_test.pdb"
  "stats_week_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_week_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
