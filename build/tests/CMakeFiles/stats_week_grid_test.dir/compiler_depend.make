# Empty compiler generated dependencies file for stats_week_grid_test.
# This may be replaced when dependencies are built.
