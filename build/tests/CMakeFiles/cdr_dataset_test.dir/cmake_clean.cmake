file(REMOVE_RECURSE
  "CMakeFiles/cdr_dataset_test.dir/cdr_dataset_test.cpp.o"
  "CMakeFiles/cdr_dataset_test.dir/cdr_dataset_test.cpp.o.d"
  "cdr_dataset_test"
  "cdr_dataset_test.pdb"
  "cdr_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
