# Empty compiler generated dependencies file for cdr_dataset_test.
# This may be replaced when dependencies are built.
