file(REMOVE_RECURSE
  "CMakeFiles/fleet_timezone_test.dir/fleet_timezone_test.cpp.o"
  "CMakeFiles/fleet_timezone_test.dir/fleet_timezone_test.cpp.o.d"
  "fleet_timezone_test"
  "fleet_timezone_test.pdb"
  "fleet_timezone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_timezone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
