file(REMOVE_RECURSE
  "CMakeFiles/core_handover_test.dir/core_handover_test.cpp.o"
  "CMakeFiles/core_handover_test.dir/core_handover_test.cpp.o.d"
  "core_handover_test"
  "core_handover_test.pdb"
  "core_handover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_handover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
