# Empty compiler generated dependencies file for core_handover_test.
# This may be replaced when dependencies are built.
