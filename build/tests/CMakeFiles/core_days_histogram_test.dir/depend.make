# Empty dependencies file for core_days_histogram_test.
# This may be replaced when dependencies are built.
