file(REMOVE_RECURSE
  "CMakeFiles/core_days_histogram_test.dir/core_days_histogram_test.cpp.o"
  "CMakeFiles/core_days_histogram_test.dir/core_days_histogram_test.cpp.o.d"
  "core_days_histogram_test"
  "core_days_histogram_test.pdb"
  "core_days_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_days_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
