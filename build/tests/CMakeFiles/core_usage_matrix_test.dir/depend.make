# Empty dependencies file for core_usage_matrix_test.
# This may be replaced when dependencies are built.
