# Empty compiler generated dependencies file for core_mobility_test.
# This may be replaced when dependencies are built.
