# Empty dependencies file for sim_fota_test.
# This may be replaced when dependencies are built.
