file(REMOVE_RECURSE
  "CMakeFiles/sim_fota_test.dir/sim_fota_test.cpp.o"
  "CMakeFiles/sim_fota_test.dir/sim_fota_test.cpp.o.d"
  "sim_fota_test"
  "sim_fota_test.pdb"
  "sim_fota_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
