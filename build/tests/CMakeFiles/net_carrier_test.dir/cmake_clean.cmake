file(REMOVE_RECURSE
  "CMakeFiles/net_carrier_test.dir/net_carrier_test.cpp.o"
  "CMakeFiles/net_carrier_test.dir/net_carrier_test.cpp.o.d"
  "net_carrier_test"
  "net_carrier_test.pdb"
  "net_carrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_carrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
