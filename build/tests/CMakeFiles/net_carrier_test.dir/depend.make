# Empty dependencies file for net_carrier_test.
# This may be replaced when dependencies are built.
