# Empty dependencies file for net_load_test.
# This may be replaced when dependencies are built.
