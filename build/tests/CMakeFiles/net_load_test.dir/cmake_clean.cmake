file(REMOVE_RECURSE
  "CMakeFiles/net_load_test.dir/net_load_test.cpp.o"
  "CMakeFiles/net_load_test.dir/net_load_test.cpp.o.d"
  "net_load_test"
  "net_load_test.pdb"
  "net_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
