file(REMOVE_RECURSE
  "CMakeFiles/net_prb_test.dir/net_prb_test.cpp.o"
  "CMakeFiles/net_prb_test.dir/net_prb_test.cpp.o.d"
  "net_prb_test"
  "net_prb_test.pdb"
  "net_prb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_prb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
