# Empty dependencies file for core_predictability_test.
# This may be replaced when dependencies are built.
