file(REMOVE_RECURSE
  "CMakeFiles/core_predictability_test.dir/core_predictability_test.cpp.o"
  "CMakeFiles/core_predictability_test.dir/core_predictability_test.cpp.o.d"
  "core_predictability_test"
  "core_predictability_test.pdb"
  "core_predictability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_predictability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
