file(REMOVE_RECURSE
  "CMakeFiles/fleet_builder_test.dir/fleet_builder_test.cpp.o"
  "CMakeFiles/fleet_builder_test.dir/fleet_builder_test.cpp.o.d"
  "fleet_builder_test"
  "fleet_builder_test.pdb"
  "fleet_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
