# Empty dependencies file for fleet_builder_test.
# This may be replaced when dependencies are built.
