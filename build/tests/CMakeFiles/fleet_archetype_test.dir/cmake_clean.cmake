file(REMOVE_RECURSE
  "CMakeFiles/fleet_archetype_test.dir/fleet_archetype_test.cpp.o"
  "CMakeFiles/fleet_archetype_test.dir/fleet_archetype_test.cpp.o.d"
  "fleet_archetype_test"
  "fleet_archetype_test.pdb"
  "fleet_archetype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_archetype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
