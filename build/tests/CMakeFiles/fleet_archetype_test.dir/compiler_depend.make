# Empty compiler generated dependencies file for fleet_archetype_test.
# This may be replaced when dependencies are built.
