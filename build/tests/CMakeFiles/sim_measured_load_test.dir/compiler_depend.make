# Empty compiler generated dependencies file for sim_measured_load_test.
# This may be replaced when dependencies are built.
