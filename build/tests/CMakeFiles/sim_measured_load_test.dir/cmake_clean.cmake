file(REMOVE_RECURSE
  "CMakeFiles/sim_measured_load_test.dir/sim_measured_load_test.cpp.o"
  "CMakeFiles/sim_measured_load_test.dir/sim_measured_load_test.cpp.o.d"
  "sim_measured_load_test"
  "sim_measured_load_test.pdb"
  "sim_measured_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_measured_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
