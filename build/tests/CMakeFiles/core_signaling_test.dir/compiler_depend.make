# Empty compiler generated dependencies file for core_signaling_test.
# This may be replaced when dependencies are built.
