file(REMOVE_RECURSE
  "CMakeFiles/core_signaling_test.dir/core_signaling_test.cpp.o"
  "CMakeFiles/core_signaling_test.dir/core_signaling_test.cpp.o.d"
  "core_signaling_test"
  "core_signaling_test.pdb"
  "core_signaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_signaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
