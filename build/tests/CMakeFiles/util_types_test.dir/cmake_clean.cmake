file(REMOVE_RECURSE
  "CMakeFiles/util_types_test.dir/util_types_test.cpp.o"
  "CMakeFiles/util_types_test.dir/util_types_test.cpp.o.d"
  "util_types_test"
  "util_types_test.pdb"
  "util_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
