file(REMOVE_RECURSE
  "CMakeFiles/fleet_schedule_test.dir/fleet_schedule_test.cpp.o"
  "CMakeFiles/fleet_schedule_test.dir/fleet_schedule_test.cpp.o.d"
  "fleet_schedule_test"
  "fleet_schedule_test.pdb"
  "fleet_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
