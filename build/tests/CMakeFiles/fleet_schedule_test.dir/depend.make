# Empty dependencies file for fleet_schedule_test.
# This may be replaced when dependencies are built.
