# Empty compiler generated dependencies file for core_carrier_usage_test.
# This may be replaced when dependencies are built.
