file(REMOVE_RECURSE
  "CMakeFiles/core_carrier_usage_test.dir/core_carrier_usage_test.cpp.o"
  "CMakeFiles/core_carrier_usage_test.dir/core_carrier_usage_test.cpp.o.d"
  "core_carrier_usage_test"
  "core_carrier_usage_test.pdb"
  "core_carrier_usage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_carrier_usage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
