file(REMOVE_RECURSE
  "CMakeFiles/cdr_io_test.dir/cdr_io_test.cpp.o"
  "CMakeFiles/cdr_io_test.dir/cdr_io_test.cpp.o.d"
  "cdr_io_test"
  "cdr_io_test.pdb"
  "cdr_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
