# Empty compiler generated dependencies file for cdr_io_test.
# This may be replaced when dependencies are built.
