file(REMOVE_RECURSE
  "CMakeFiles/fleet_gen_config_sweep_test.dir/fleet_gen_config_sweep_test.cpp.o"
  "CMakeFiles/fleet_gen_config_sweep_test.dir/fleet_gen_config_sweep_test.cpp.o.d"
  "fleet_gen_config_sweep_test"
  "fleet_gen_config_sweep_test.pdb"
  "fleet_gen_config_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_gen_config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
