# Empty dependencies file for fleet_conn_gen_test.
# This may be replaced when dependencies are built.
