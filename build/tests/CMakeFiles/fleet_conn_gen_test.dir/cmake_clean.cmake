file(REMOVE_RECURSE
  "CMakeFiles/fleet_conn_gen_test.dir/fleet_conn_gen_test.cpp.o"
  "CMakeFiles/fleet_conn_gen_test.dir/fleet_conn_gen_test.cpp.o.d"
  "fleet_conn_gen_test"
  "fleet_conn_gen_test.pdb"
  "fleet_conn_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_conn_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
