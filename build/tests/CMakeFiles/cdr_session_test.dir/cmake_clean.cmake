file(REMOVE_RECURSE
  "CMakeFiles/cdr_session_test.dir/cdr_session_test.cpp.o"
  "CMakeFiles/cdr_session_test.dir/cdr_session_test.cpp.o.d"
  "cdr_session_test"
  "cdr_session_test.pdb"
  "cdr_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
