# Empty compiler generated dependencies file for cdr_session_test.
# This may be replaced when dependencies are built.
