# Empty dependencies file for net_rrc_test.
# This may be replaced when dependencies are built.
