file(REMOVE_RECURSE
  "CMakeFiles/net_rrc_test.dir/net_rrc_test.cpp.o"
  "CMakeFiles/net_rrc_test.dir/net_rrc_test.cpp.o.d"
  "net_rrc_test"
  "net_rrc_test.pdb"
  "net_rrc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
