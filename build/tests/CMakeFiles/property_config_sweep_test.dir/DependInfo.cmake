
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_config_sweep_test.cpp" "tests/CMakeFiles/property_config_sweep_test.dir/property_config_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/property_config_sweep_test.dir/property_config_sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fota/CMakeFiles/ccms_fota.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ccms_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/ccms_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccms_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
