file(REMOVE_RECURSE
  "CMakeFiles/core_connected_time_test.dir/core_connected_time_test.cpp.o"
  "CMakeFiles/core_connected_time_test.dir/core_connected_time_test.cpp.o.d"
  "core_connected_time_test"
  "core_connected_time_test.pdb"
  "core_connected_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_connected_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
