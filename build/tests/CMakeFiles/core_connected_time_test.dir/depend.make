# Empty dependencies file for core_connected_time_test.
# This may be replaced when dependencies are built.
