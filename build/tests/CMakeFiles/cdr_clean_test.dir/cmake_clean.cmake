file(REMOVE_RECURSE
  "CMakeFiles/cdr_clean_test.dir/cdr_clean_test.cpp.o"
  "CMakeFiles/cdr_clean_test.dir/cdr_clean_test.cpp.o.d"
  "cdr_clean_test"
  "cdr_clean_test.pdb"
  "cdr_clean_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdr_clean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
