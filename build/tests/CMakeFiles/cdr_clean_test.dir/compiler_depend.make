# Empty compiler generated dependencies file for cdr_clean_test.
# This may be replaced when dependencies are built.
