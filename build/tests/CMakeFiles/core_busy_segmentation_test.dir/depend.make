# Empty dependencies file for core_busy_segmentation_test.
# This may be replaced when dependencies are built.
