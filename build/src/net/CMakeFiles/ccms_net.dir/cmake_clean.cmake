file(REMOVE_RECURSE
  "CMakeFiles/ccms_net.dir/carrier.cpp.o"
  "CMakeFiles/ccms_net.dir/carrier.cpp.o.d"
  "CMakeFiles/ccms_net.dir/cell.cpp.o"
  "CMakeFiles/ccms_net.dir/cell.cpp.o.d"
  "CMakeFiles/ccms_net.dir/load.cpp.o"
  "CMakeFiles/ccms_net.dir/load.cpp.o.d"
  "CMakeFiles/ccms_net.dir/map.cpp.o"
  "CMakeFiles/ccms_net.dir/map.cpp.o.d"
  "CMakeFiles/ccms_net.dir/prb.cpp.o"
  "CMakeFiles/ccms_net.dir/prb.cpp.o.d"
  "CMakeFiles/ccms_net.dir/rrc.cpp.o"
  "CMakeFiles/ccms_net.dir/rrc.cpp.o.d"
  "CMakeFiles/ccms_net.dir/topology.cpp.o"
  "CMakeFiles/ccms_net.dir/topology.cpp.o.d"
  "libccms_net.a"
  "libccms_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
