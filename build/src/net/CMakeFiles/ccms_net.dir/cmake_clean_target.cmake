file(REMOVE_RECURSE
  "libccms_net.a"
)
