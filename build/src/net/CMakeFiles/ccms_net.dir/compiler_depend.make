# Empty compiler generated dependencies file for ccms_net.
# This may be replaced when dependencies are built.
