
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/carrier.cpp" "src/net/CMakeFiles/ccms_net.dir/carrier.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/carrier.cpp.o.d"
  "/root/repo/src/net/cell.cpp" "src/net/CMakeFiles/ccms_net.dir/cell.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/cell.cpp.o.d"
  "/root/repo/src/net/load.cpp" "src/net/CMakeFiles/ccms_net.dir/load.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/load.cpp.o.d"
  "/root/repo/src/net/map.cpp" "src/net/CMakeFiles/ccms_net.dir/map.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/map.cpp.o.d"
  "/root/repo/src/net/prb.cpp" "src/net/CMakeFiles/ccms_net.dir/prb.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/prb.cpp.o.d"
  "/root/repo/src/net/rrc.cpp" "src/net/CMakeFiles/ccms_net.dir/rrc.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/rrc.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/ccms_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/ccms_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
