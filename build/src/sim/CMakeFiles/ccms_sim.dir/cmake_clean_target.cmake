file(REMOVE_RECURSE
  "libccms_sim.a"
)
