# Empty dependencies file for ccms_sim.
# This may be replaced when dependencies are built.
