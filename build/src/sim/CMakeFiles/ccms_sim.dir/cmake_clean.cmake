file(REMOVE_RECURSE
  "CMakeFiles/ccms_sim.dir/fota.cpp.o"
  "CMakeFiles/ccms_sim.dir/fota.cpp.o.d"
  "CMakeFiles/ccms_sim.dir/measured_load.cpp.o"
  "CMakeFiles/ccms_sim.dir/measured_load.cpp.o.d"
  "CMakeFiles/ccms_sim.dir/simulator.cpp.o"
  "CMakeFiles/ccms_sim.dir/simulator.cpp.o.d"
  "libccms_sim.a"
  "libccms_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
