file(REMOVE_RECURSE
  "libccms_core.a"
)
