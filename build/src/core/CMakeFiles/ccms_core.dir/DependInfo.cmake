
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/busy_time.cpp" "src/core/CMakeFiles/ccms_core.dir/busy_time.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/busy_time.cpp.o.d"
  "/root/repo/src/core/carrier_usage.cpp" "src/core/CMakeFiles/ccms_core.dir/carrier_usage.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/carrier_usage.cpp.o.d"
  "/root/repo/src/core/cell_sessions.cpp" "src/core/CMakeFiles/ccms_core.dir/cell_sessions.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/cell_sessions.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/ccms_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/concurrency.cpp" "src/core/CMakeFiles/ccms_core.dir/concurrency.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/concurrency.cpp.o.d"
  "/root/repo/src/core/connected_time.cpp" "src/core/CMakeFiles/ccms_core.dir/connected_time.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/connected_time.cpp.o.d"
  "/root/repo/src/core/days_histogram.cpp" "src/core/CMakeFiles/ccms_core.dir/days_histogram.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/days_histogram.cpp.o.d"
  "/root/repo/src/core/handover.cpp" "src/core/CMakeFiles/ccms_core.dir/handover.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/handover.cpp.o.d"
  "/root/repo/src/core/load_estimate.cpp" "src/core/CMakeFiles/ccms_core.dir/load_estimate.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/load_estimate.cpp.o.d"
  "/root/repo/src/core/load_view.cpp" "src/core/CMakeFiles/ccms_core.dir/load_view.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/load_view.cpp.o.d"
  "/root/repo/src/core/mobility.cpp" "src/core/CMakeFiles/ccms_core.dir/mobility.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/mobility.cpp.o.d"
  "/root/repo/src/core/predictability.cpp" "src/core/CMakeFiles/ccms_core.dir/predictability.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/predictability.cpp.o.d"
  "/root/repo/src/core/presence.cpp" "src/core/CMakeFiles/ccms_core.dir/presence.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/presence.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ccms_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/report.cpp.o.d"
  "/root/repo/src/core/report_csv.cpp" "src/core/CMakeFiles/ccms_core.dir/report_csv.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/report_csv.cpp.o.d"
  "/root/repo/src/core/segmentation.cpp" "src/core/CMakeFiles/ccms_core.dir/segmentation.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/segmentation.cpp.o.d"
  "/root/repo/src/core/signaling.cpp" "src/core/CMakeFiles/ccms_core.dir/signaling.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/signaling.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/ccms_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/study.cpp.o.d"
  "/root/repo/src/core/usage_matrix.cpp" "src/core/CMakeFiles/ccms_core.dir/usage_matrix.cpp.o" "gcc" "src/core/CMakeFiles/ccms_core.dir/usage_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccms_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/ccms_cdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
