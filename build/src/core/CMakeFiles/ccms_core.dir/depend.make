# Empty dependencies file for ccms_core.
# This may be replaced when dependencies are built.
