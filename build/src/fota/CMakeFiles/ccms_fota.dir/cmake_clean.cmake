file(REMOVE_RECURSE
  "CMakeFiles/ccms_fota.dir/campaign.cpp.o"
  "CMakeFiles/ccms_fota.dir/campaign.cpp.o.d"
  "libccms_fota.a"
  "libccms_fota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_fota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
