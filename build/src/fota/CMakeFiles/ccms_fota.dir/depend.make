# Empty dependencies file for ccms_fota.
# This may be replaced when dependencies are built.
