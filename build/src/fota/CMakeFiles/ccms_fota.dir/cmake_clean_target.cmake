file(REMOVE_RECURSE
  "libccms_fota.a"
)
