file(REMOVE_RECURSE
  "CMakeFiles/ccms_cdr.dir/anonymize.cpp.o"
  "CMakeFiles/ccms_cdr.dir/anonymize.cpp.o.d"
  "CMakeFiles/ccms_cdr.dir/clean.cpp.o"
  "CMakeFiles/ccms_cdr.dir/clean.cpp.o.d"
  "CMakeFiles/ccms_cdr.dir/dataset.cpp.o"
  "CMakeFiles/ccms_cdr.dir/dataset.cpp.o.d"
  "CMakeFiles/ccms_cdr.dir/io.cpp.o"
  "CMakeFiles/ccms_cdr.dir/io.cpp.o.d"
  "CMakeFiles/ccms_cdr.dir/session.cpp.o"
  "CMakeFiles/ccms_cdr.dir/session.cpp.o.d"
  "libccms_cdr.a"
  "libccms_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
