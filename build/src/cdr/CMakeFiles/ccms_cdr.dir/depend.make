# Empty dependencies file for ccms_cdr.
# This may be replaced when dependencies are built.
