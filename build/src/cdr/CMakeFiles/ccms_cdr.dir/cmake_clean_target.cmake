file(REMOVE_RECURSE
  "libccms_cdr.a"
)
