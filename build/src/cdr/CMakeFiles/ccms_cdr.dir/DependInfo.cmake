
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdr/anonymize.cpp" "src/cdr/CMakeFiles/ccms_cdr.dir/anonymize.cpp.o" "gcc" "src/cdr/CMakeFiles/ccms_cdr.dir/anonymize.cpp.o.d"
  "/root/repo/src/cdr/clean.cpp" "src/cdr/CMakeFiles/ccms_cdr.dir/clean.cpp.o" "gcc" "src/cdr/CMakeFiles/ccms_cdr.dir/clean.cpp.o.d"
  "/root/repo/src/cdr/dataset.cpp" "src/cdr/CMakeFiles/ccms_cdr.dir/dataset.cpp.o" "gcc" "src/cdr/CMakeFiles/ccms_cdr.dir/dataset.cpp.o.d"
  "/root/repo/src/cdr/io.cpp" "src/cdr/CMakeFiles/ccms_cdr.dir/io.cpp.o" "gcc" "src/cdr/CMakeFiles/ccms_cdr.dir/io.cpp.o.d"
  "/root/repo/src/cdr/session.cpp" "src/cdr/CMakeFiles/ccms_cdr.dir/session.cpp.o" "gcc" "src/cdr/CMakeFiles/ccms_cdr.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
