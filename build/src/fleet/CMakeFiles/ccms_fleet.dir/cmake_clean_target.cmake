file(REMOVE_RECURSE
  "libccms_fleet.a"
)
