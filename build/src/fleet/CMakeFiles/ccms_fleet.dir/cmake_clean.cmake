file(REMOVE_RECURSE
  "CMakeFiles/ccms_fleet.dir/archetype.cpp.o"
  "CMakeFiles/ccms_fleet.dir/archetype.cpp.o.d"
  "CMakeFiles/ccms_fleet.dir/connection_gen.cpp.o"
  "CMakeFiles/ccms_fleet.dir/connection_gen.cpp.o.d"
  "CMakeFiles/ccms_fleet.dir/fleet_builder.cpp.o"
  "CMakeFiles/ccms_fleet.dir/fleet_builder.cpp.o.d"
  "CMakeFiles/ccms_fleet.dir/reference_devices.cpp.o"
  "CMakeFiles/ccms_fleet.dir/reference_devices.cpp.o.d"
  "CMakeFiles/ccms_fleet.dir/schedule.cpp.o"
  "CMakeFiles/ccms_fleet.dir/schedule.cpp.o.d"
  "libccms_fleet.a"
  "libccms_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
