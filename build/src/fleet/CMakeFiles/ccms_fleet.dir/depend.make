# Empty dependencies file for ccms_fleet.
# This may be replaced when dependencies are built.
