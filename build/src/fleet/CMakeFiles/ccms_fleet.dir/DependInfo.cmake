
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/archetype.cpp" "src/fleet/CMakeFiles/ccms_fleet.dir/archetype.cpp.o" "gcc" "src/fleet/CMakeFiles/ccms_fleet.dir/archetype.cpp.o.d"
  "/root/repo/src/fleet/connection_gen.cpp" "src/fleet/CMakeFiles/ccms_fleet.dir/connection_gen.cpp.o" "gcc" "src/fleet/CMakeFiles/ccms_fleet.dir/connection_gen.cpp.o.d"
  "/root/repo/src/fleet/fleet_builder.cpp" "src/fleet/CMakeFiles/ccms_fleet.dir/fleet_builder.cpp.o" "gcc" "src/fleet/CMakeFiles/ccms_fleet.dir/fleet_builder.cpp.o.d"
  "/root/repo/src/fleet/reference_devices.cpp" "src/fleet/CMakeFiles/ccms_fleet.dir/reference_devices.cpp.o" "gcc" "src/fleet/CMakeFiles/ccms_fleet.dir/reference_devices.cpp.o.d"
  "/root/repo/src/fleet/schedule.cpp" "src/fleet/CMakeFiles/ccms_fleet.dir/schedule.cpp.o" "gcc" "src/fleet/CMakeFiles/ccms_fleet.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/ccms_cdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
