# Empty dependencies file for ccms_util.
# This may be replaced when dependencies are built.
