file(REMOVE_RECURSE
  "CMakeFiles/ccms_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/ccms_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/ccms_util.dir/csv.cpp.o"
  "CMakeFiles/ccms_util.dir/csv.cpp.o.d"
  "CMakeFiles/ccms_util.dir/rng.cpp.o"
  "CMakeFiles/ccms_util.dir/rng.cpp.o.d"
  "CMakeFiles/ccms_util.dir/time.cpp.o"
  "CMakeFiles/ccms_util.dir/time.cpp.o.d"
  "libccms_util.a"
  "libccms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
