file(REMOVE_RECURSE
  "libccms_util.a"
)
