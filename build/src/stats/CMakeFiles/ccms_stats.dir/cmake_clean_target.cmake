file(REMOVE_RECURSE
  "libccms_stats.a"
)
