file(REMOVE_RECURSE
  "CMakeFiles/ccms_stats.dir/descriptive.cpp.o"
  "CMakeFiles/ccms_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/histogram.cpp.o"
  "CMakeFiles/ccms_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/kmeans.cpp.o"
  "CMakeFiles/ccms_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/ccms_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/quantile.cpp.o"
  "CMakeFiles/ccms_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/regression.cpp.o"
  "CMakeFiles/ccms_stats.dir/regression.cpp.o.d"
  "CMakeFiles/ccms_stats.dir/week_grid.cpp.o"
  "CMakeFiles/ccms_stats.dir/week_grid.cpp.o.d"
  "libccms_stats.a"
  "libccms_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccms_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
