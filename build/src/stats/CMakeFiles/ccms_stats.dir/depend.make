# Empty dependencies file for ccms_stats.
# This may be replaced when dependencies are built.
