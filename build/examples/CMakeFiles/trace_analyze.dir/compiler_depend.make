# Empty compiler generated dependencies file for trace_analyze.
# This may be replaced when dependencies are built.
