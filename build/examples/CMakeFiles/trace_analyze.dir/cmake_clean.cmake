file(REMOVE_RECURSE
  "CMakeFiles/trace_analyze.dir/trace_analyze.cpp.o"
  "CMakeFiles/trace_analyze.dir/trace_analyze.cpp.o.d"
  "trace_analyze"
  "trace_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
