file(REMOVE_RECURSE
  "CMakeFiles/make_study.dir/make_study.cpp.o"
  "CMakeFiles/make_study.dir/make_study.cpp.o.d"
  "make_study"
  "make_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
