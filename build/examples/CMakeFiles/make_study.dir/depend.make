# Empty dependencies file for make_study.
# This may be replaced when dependencies are built.
