# Empty compiler generated dependencies file for fota_campaign.
# This may be replaced when dependencies are built.
