file(REMOVE_RECURSE
  "CMakeFiles/fota_campaign.dir/fota_campaign.cpp.o"
  "CMakeFiles/fota_campaign.dir/fota_campaign.cpp.o.d"
  "fota_campaign"
  "fota_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fota_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
