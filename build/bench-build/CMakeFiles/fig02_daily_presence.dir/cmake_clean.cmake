file(REMOVE_RECURSE
  "../bench/fig02_daily_presence"
  "../bench/fig02_daily_presence.pdb"
  "CMakeFiles/fig02_daily_presence.dir/fig02_daily_presence.cpp.o"
  "CMakeFiles/fig02_daily_presence.dir/fig02_daily_presence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_daily_presence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
