# Empty dependencies file for fig02_daily_presence.
# This may be replaced when dependencies are built.
