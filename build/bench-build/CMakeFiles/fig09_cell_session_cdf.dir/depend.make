# Empty dependencies file for fig09_cell_session_cdf.
# This may be replaced when dependencies are built.
