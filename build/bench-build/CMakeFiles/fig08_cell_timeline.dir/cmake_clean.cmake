file(REMOVE_RECURSE
  "../bench/fig08_cell_timeline"
  "../bench/fig08_cell_timeline.pdb"
  "CMakeFiles/fig08_cell_timeline.dir/fig08_cell_timeline.cpp.o"
  "CMakeFiles/fig08_cell_timeline.dir/fig08_cell_timeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cell_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
