# Empty dependencies file for fig08_cell_timeline.
# This may be replaced when dependencies are built.
