# Empty compiler generated dependencies file for fig01_fota_saturation.
# This may be replaced when dependencies are built.
