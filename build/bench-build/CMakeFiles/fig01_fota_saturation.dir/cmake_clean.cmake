file(REMOVE_RECURSE
  "../bench/fig01_fota_saturation"
  "../bench/fig01_fota_saturation.pdb"
  "CMakeFiles/fig01_fota_saturation.dir/fig01_fota_saturation.cpp.o"
  "CMakeFiles/fig01_fota_saturation.dir/fig01_fota_saturation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_fota_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
