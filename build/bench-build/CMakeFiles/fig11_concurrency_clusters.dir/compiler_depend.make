# Empty compiler generated dependencies file for fig11_concurrency_clusters.
# This may be replaced when dependencies are built.
