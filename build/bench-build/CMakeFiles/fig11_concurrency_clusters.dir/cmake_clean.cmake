file(REMOVE_RECURSE
  "../bench/fig11_concurrency_clusters"
  "../bench/fig11_concurrency_clusters.pdb"
  "CMakeFiles/fig11_concurrency_clusters.dir/fig11_concurrency_clusters.cpp.o"
  "CMakeFiles/fig11_concurrency_clusters.dir/fig11_concurrency_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_concurrency_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
