# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table1_presence_by_weekday.
