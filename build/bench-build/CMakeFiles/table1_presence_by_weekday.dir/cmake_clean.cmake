file(REMOVE_RECURSE
  "../bench/table1_presence_by_weekday"
  "../bench/table1_presence_by_weekday.pdb"
  "CMakeFiles/table1_presence_by_weekday.dir/table1_presence_by_weekday.cpp.o"
  "CMakeFiles/table1_presence_by_weekday.dir/table1_presence_by_weekday.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_presence_by_weekday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
