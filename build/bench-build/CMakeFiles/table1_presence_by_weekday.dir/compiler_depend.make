# Empty compiler generated dependencies file for table1_presence_by_weekday.
# This may be replaced when dependencies are built.
