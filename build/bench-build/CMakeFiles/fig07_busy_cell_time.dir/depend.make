# Empty dependencies file for fig07_busy_cell_time.
# This may be replaced when dependencies are built.
