file(REMOVE_RECURSE
  "../bench/fig07_busy_cell_time"
  "../bench/fig07_busy_cell_time.pdb"
  "CMakeFiles/fig07_busy_cell_time.dir/fig07_busy_cell_time.cpp.o"
  "CMakeFiles/fig07_busy_cell_time.dir/fig07_busy_cell_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_busy_cell_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
