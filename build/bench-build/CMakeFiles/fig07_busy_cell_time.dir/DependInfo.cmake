
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_busy_cell_time.cpp" "bench-build/CMakeFiles/fig07_busy_cell_time.dir/fig07_busy_cell_time.cpp.o" "gcc" "bench-build/CMakeFiles/fig07_busy_cell_time.dir/fig07_busy_cell_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fota/CMakeFiles/ccms_fota.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ccms_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ccms_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ccms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/ccms_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
