# Empty compiler generated dependencies file for ext_fota_campaign_sim.
# This may be replaced when dependencies are built.
