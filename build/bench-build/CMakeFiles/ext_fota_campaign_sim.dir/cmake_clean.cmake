file(REMOVE_RECURSE
  "../bench/ext_fota_campaign_sim"
  "../bench/ext_fota_campaign_sim.pdb"
  "CMakeFiles/ext_fota_campaign_sim.dir/ext_fota_campaign_sim.cpp.o"
  "CMakeFiles/ext_fota_campaign_sim.dir/ext_fota_campaign_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fota_campaign_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
