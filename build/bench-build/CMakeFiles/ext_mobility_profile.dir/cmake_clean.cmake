file(REMOVE_RECURSE
  "../bench/ext_mobility_profile"
  "../bench/ext_mobility_profile.pdb"
  "CMakeFiles/ext_mobility_profile.dir/ext_mobility_profile.cpp.o"
  "CMakeFiles/ext_mobility_profile.dir/ext_mobility_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mobility_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
