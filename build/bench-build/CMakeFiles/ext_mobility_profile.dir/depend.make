# Empty dependencies file for ext_mobility_profile.
# This may be replaced when dependencies are built.
