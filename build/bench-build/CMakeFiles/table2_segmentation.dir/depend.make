# Empty dependencies file for table2_segmentation.
# This may be replaced when dependencies are built.
