file(REMOVE_RECURSE
  "../bench/table2_segmentation"
  "../bench/table2_segmentation.pdb"
  "CMakeFiles/table2_segmentation.dir/table2_segmentation.cpp.o"
  "CMakeFiles/table2_segmentation.dir/table2_segmentation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
