# Empty dependencies file for sec45_handover_stats.
# This may be replaced when dependencies are built.
