file(REMOVE_RECURSE
  "../bench/sec45_handover_stats"
  "../bench/sec45_handover_stats.pdb"
  "CMakeFiles/sec45_handover_stats.dir/sec45_handover_stats.cpp.o"
  "CMakeFiles/sec45_handover_stats.dir/sec45_handover_stats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec45_handover_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
