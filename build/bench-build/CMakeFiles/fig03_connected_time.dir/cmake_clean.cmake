file(REMOVE_RECURSE
  "../bench/fig03_connected_time"
  "../bench/fig03_connected_time.pdb"
  "CMakeFiles/fig03_connected_time.dir/fig03_connected_time.cpp.o"
  "CMakeFiles/fig03_connected_time.dir/fig03_connected_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_connected_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
