# Empty dependencies file for fig03_connected_time.
# This may be replaced when dependencies are built.
