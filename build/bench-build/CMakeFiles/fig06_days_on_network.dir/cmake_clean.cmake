file(REMOVE_RECURSE
  "../bench/fig06_days_on_network"
  "../bench/fig06_days_on_network.pdb"
  "CMakeFiles/fig06_days_on_network.dir/fig06_days_on_network.cpp.o"
  "CMakeFiles/fig06_days_on_network.dir/fig06_days_on_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_days_on_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
