# Empty compiler generated dependencies file for fig06_days_on_network.
# This may be replaced when dependencies are built.
