# Empty compiler generated dependencies file for fig04_period_masks.
# This may be replaced when dependencies are built.
