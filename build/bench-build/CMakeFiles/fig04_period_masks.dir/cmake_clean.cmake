file(REMOVE_RECURSE
  "../bench/fig04_period_masks"
  "../bench/fig04_period_masks.pdb"
  "CMakeFiles/fig04_period_masks.dir/fig04_period_masks.cpp.o"
  "CMakeFiles/fig04_period_masks.dir/fig04_period_masks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_period_masks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
