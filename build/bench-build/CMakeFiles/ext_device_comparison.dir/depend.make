# Empty dependencies file for ext_device_comparison.
# This may be replaced when dependencies are built.
