file(REMOVE_RECURSE
  "../bench/ext_device_comparison"
  "../bench/ext_device_comparison.pdb"
  "CMakeFiles/ext_device_comparison.dir/ext_device_comparison.cpp.o"
  "CMakeFiles/ext_device_comparison.dir/ext_device_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_device_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
