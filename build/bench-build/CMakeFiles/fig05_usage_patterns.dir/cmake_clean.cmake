file(REMOVE_RECURSE
  "../bench/fig05_usage_patterns"
  "../bench/fig05_usage_patterns.pdb"
  "CMakeFiles/fig05_usage_patterns.dir/fig05_usage_patterns.cpp.o"
  "CMakeFiles/fig05_usage_patterns.dir/fig05_usage_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_usage_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
