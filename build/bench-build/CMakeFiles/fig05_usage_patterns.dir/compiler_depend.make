# Empty compiler generated dependencies file for fig05_usage_patterns.
# This may be replaced when dependencies are built.
