file(REMOVE_RECURSE
  "../bench/ext_predictability_clusters"
  "../bench/ext_predictability_clusters.pdb"
  "CMakeFiles/ext_predictability_clusters.dir/ext_predictability_clusters.cpp.o"
  "CMakeFiles/ext_predictability_clusters.dir/ext_predictability_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_predictability_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
