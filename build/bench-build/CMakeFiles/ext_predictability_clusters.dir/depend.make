# Empty dependencies file for ext_predictability_clusters.
# This may be replaced when dependencies are built.
