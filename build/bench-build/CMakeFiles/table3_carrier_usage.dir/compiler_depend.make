# Empty compiler generated dependencies file for table3_carrier_usage.
# This may be replaced when dependencies are built.
