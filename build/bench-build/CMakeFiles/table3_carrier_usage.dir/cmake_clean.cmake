file(REMOVE_RECURSE
  "../bench/table3_carrier_usage"
  "../bench/table3_carrier_usage.pdb"
  "CMakeFiles/table3_carrier_usage.dir/table3_carrier_usage.cpp.o"
  "CMakeFiles/table3_carrier_usage.dir/table3_carrier_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_carrier_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
