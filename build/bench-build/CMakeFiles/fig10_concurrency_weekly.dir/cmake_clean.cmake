file(REMOVE_RECURSE
  "../bench/fig10_concurrency_weekly"
  "../bench/fig10_concurrency_weekly.pdb"
  "CMakeFiles/fig10_concurrency_weekly.dir/fig10_concurrency_weekly.cpp.o"
  "CMakeFiles/fig10_concurrency_weekly.dir/fig10_concurrency_weekly.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_concurrency_weekly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
