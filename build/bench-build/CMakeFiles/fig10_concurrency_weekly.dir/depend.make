# Empty dependencies file for fig10_concurrency_weekly.
# This may be replaced when dependencies are built.
