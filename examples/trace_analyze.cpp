// trace_analyze: run the cell-independent analyses on ANY CDR CSV file —
// the path a downstream user takes with their own trace export.
//
// Usage:
//   trace_analyze <cdr.csv>          analyze an existing trace
//   trace_analyze --demo [path]      write a demo trace first, then analyze
//
// Input schema (see cdr::write_csv): car,cell,start_s,duration_s with an
// optional "#fleet_size=N,study_days=M" metadata row. Analyses that need
// the radio topology or PRB grid (busy-hour, handover typing, carrier
// shares) require the simulator study; everything here runs from the
// records alone.
#include <cstdio>
#include <cstring>
#include <string>

#include "cdr/clean.h"
#include "cdr/io.h"
#include "cdr/session.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "core/days_histogram.h"
#include "core/presence.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace ccms;

  std::string path;
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    path = argc >= 3 ? argv[2] : "/tmp/ccms_demo_trace.csv";
    sim::SimConfig config = sim::SimConfig::quick();
    config.fleet.size = 400;
    config.study_days = 30;
    const sim::Study study = sim::simulate(config);
    cdr::write_csv(study.raw, path);
    std::printf("wrote demo trace: %s (%zu records)\n\n", path.c_str(),
                study.raw.size());
  } else if (argc >= 2) {
    path = argv[1];
  } else {
    std::fprintf(stderr, "usage: %s <cdr.csv> | --demo [path]\n", argv[0]);
    return 2;
  }

  cdr::Dataset raw;
  try {
    raw = cdr::read_csv(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to read %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %zu records, fleet size %u, %d study days, %zu cells\n",
              raw.size(), raw.fleet_size(), raw.study_days(),
              raw.distinct_cells());

  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(raw, {}, clean_report);
  std::printf("cleaning: removed %zu records (%zu exactly-1-hour "
              "artifacts, %zu non-positive, %zu implausible)\n\n",
              clean_report.total_removed(),
              clean_report.hour_artifacts_removed,
              clean_report.nonpositive_removed,
              clean_report.implausible_removed);

  const core::DailyPresence presence = core::analyze_presence(cleaned);
  std::printf("daily presence: %.1f%% of cars on the network per day "
              "(stdev %.1f%%), %.1f%% of cells touched per day\n",
              presence.cars_overall.mean * 100,
              presence.cars_overall.stdev * 100,
              presence.cells_overall.mean * 100);

  const core::ConnectedTime ct = core::analyze_connected_time(cleaned);
  std::printf("connected time: mean %.1f%% of the study (%.1f%% truncated), "
              "p99.5 %.1f%%\n",
              ct.mean_full * 100, ct.mean_truncated * 100,
              ct.p995_full * 100);

  const core::DaysOnNetwork days = core::analyze_days_on_network(cleaned);
  std::size_t rare10 = 0;
  for (const int d : days.days_per_car) rare10 += d <= 10;
  std::printf("days on network: knee at %d days; %.1f%% of cars rare "
              "(<=10 days)\n",
              days.knee_days,
              100.0 * static_cast<double>(rare10) /
                  std::max<std::size_t>(1, days.days_per_car.size()));

  const core::CellSessionStats sessions = core::analyze_cell_sessions(cleaned);
  std::printf("per-cell connections: median %.0f s, mean %.0f s, "
              "%.0f%% complete within 600 s\n",
              sessions.median, sessions.mean_full,
              sessions.cdf_at_cap * 100);

  // Journey structure without cell metadata: session and leg counts.
  std::size_t journeys = 0, legs = 0;
  cleaned.for_each_car([&](CarId, std::span<const cdr::Connection> conns) {
    const auto s = cdr::aggregate_sessions(conns, cdr::kJourneyGap);
    journeys += s.size();
    for (const auto& session : s) legs += session.legs.size();
  });
  std::printf("journeys (10-min gap): %zu, averaging %.1f connections each\n",
              journeys,
              journeys > 0 ? static_cast<double>(legs) / journeys : 0.0);
  return 0;
}
