// capacity_planner: rank radio cells by connected-car pressure — the
// "intelligent capacity and network management" use the paper closes on.
//
// For every busy radio (weekly average measured PRB >= 70%) the planner
// combines three signals:
//   - headroom: how little idle capacity remains at the cell's peak,
//   - car pressure: average concurrent cars during the cell's busy bins
//     (Fig 10/11's metric),
//   - FOTA exposure: how long a standard update would monopolise the cell
//     if one resident car pulled it at peak (the Fig 1 scenario).
// and prints the top candidates for a carrier add / small-cell offload.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "cdr/clean.h"
#include "core/concurrency.h"
#include "core/load_view.h"
#include "net/map.h"
#include "sim/fota.h"
#include "sim/measured_load.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace ccms;
  const int top_n = argc > 1 ? std::atoi(argv[1]) : 12;

  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = 2000;
  const sim::Study study = sim::simulate(config);
  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, clean_report);
  const core::CellLoad measured =
      sim::measured_load(study.background, cleaned);
  const core::ConcurrencyGrid grid = core::ConcurrencyGrid::build(cleaned);

  std::printf("service area load ('.'=idle .. '@'=saturated):\n%s\n",
              net::render_load_map(study.topology, study.background).c_str());

  struct Candidate {
    CellId cell;
    double weekly_mean = 0;
    double peak_cars = 0;
    double fota_hours = 0;
    double score = 0;
  };
  std::vector<Candidate> candidates;
  for (const core::CellConcurrency& profile : grid.cells()) {
    const double mean = measured.weekly_mean(profile.cell);
    if (mean < 0.70) continue;
    Candidate c;
    c.cell = profile.cell;
    c.weekly_mean = mean;
    c.peak_cars = profile.peak;
    const double seconds = sim::fota_download_seconds(
        study.background, study.topology.cells(), profile.cell, 500.0, 76);
    c.fota_hours = seconds > 0 ? seconds / 3600.0 : 24.0;  // saturated => cap
    // Pressure score: load headroom deficit x car presence x FOTA pain.
    c.score = c.weekly_mean * (1.0 + c.peak_cars) * c.fota_hours;
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  std::printf("busy radios: %zu; top %d capacity-upgrade candidates:\n",
              candidates.size(), top_n);
  std::printf("%8s %8s %8s %10s %12s %10s %8s\n", "cell", "station", "class",
              "mean PRB", "peak cars", "fota(h)", "score");
  for (int i = 0; i < top_n && i < static_cast<int>(candidates.size()); ++i) {
    const Candidate& c = candidates[static_cast<std::size_t>(i)];
    const net::CellInfo& info = study.topology.cells().info(c.cell);
    std::printf("%8u %8u %8s %9.0f%% %12.1f %10.1f %8.1f\n", c.cell.value,
                info.station.value, net::name(info.geo), c.weekly_mean * 100,
                c.peak_cars, c.fota_hours, c.score);
  }

  std::printf("\n(suggestion: add a carrier or offload the top cells before "
              "any FOTA campaign window opens - a 500 MB update at 19:00 "
              "holds them near saturation for the hours shown)\n");
  return 0;
}
