// fleet_report: simulate a full synthetic study and print every analysis of
// the paper side by side with the paper's reported values.
//
// Usage: fleet_report [cars] [days] [seed] [csv_output_dir]
//
// This is the "whole pipeline" example: simulate -> clean -> analyze ->
// report, exercising the same public API a user would point at their own
// CDR export.
#include <cstdlib>
#include <iostream>

#include "core/load_view.h"
#include "core/report.h"
#include "core/report_csv.h"
#include "core/study.h"
#include "net/map.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  ccms::sim::SimConfig config = ccms::sim::SimConfig::paper_default();
  if (argc > 1) config.fleet.size = std::atoi(argv[1]);
  if (argc > 2) config.study_days = std::atoi(argv[2]);
  if (argc > 3) config.seed = static_cast<std::uint64_t>(std::atoll(argv[3]));

  std::cout << "Simulating " << config.fleet.size << " cars over "
            << config.study_days << " days (seed " << config.seed << ")...\n";
  const ccms::sim::Study study = ccms::sim::simulate(config);
  std::cout << "  " << study.raw.size() << " raw connection records, "
            << study.topology.cells().size() << " cells, "
            << study.topology.station_count() << " stations\n\n";

  if (config.topology.grid_width <= 48) {
    std::cout << "service area (D downtown, s suburban, + highway, . rural):\n"
              << ccms::net::render_geo_map(study.topology)
              << "\nmean weekly load per station (' '=idle .. '@'=hot):\n"
              << ccms::net::render_load_map(study.topology, study.background)
              << "\n";
  }

  const auto load = ccms::core::CellLoad::from_background(study.background);
  const ccms::core::StudyReport report =
      ccms::core::run_study(study.raw, study.topology.cells(), load);

  ccms::core::print_report(std::cout, report);

  if (argc > 4) {
    ccms::core::write_report_csv(argv[4], report);
    std::cout << "\nwrote per-exhibit CSV files to " << argv[4] << "\n";
  }
  return 0;
}
