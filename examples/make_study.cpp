// make_study: generate a synthetic CDR study to a file — the dataset-
// production CLI for anyone who wants the records without linking the
// library (feeds spreadsheet/pandas workflows, or the trace_analyze tool).
//
// Usage:
//   make_study [--cars N] [--days N] [--seed S] [--grid W]
//              [--anonymize SALT] [--out PATH]
//
// The output format follows the extension: .csv or .bin (CCDR1).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cdr/anonymize.h"
#include "cdr/io.h"
#include "sim/simulator.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--cars N] [--days N] [--seed S] [--grid W]\n"
               "          [--anonymize SALT] [--out PATH(.csv|.bin)]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccms;

  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = 2000;
  std::string out = "study.csv";
  bool do_anonymize = false;
  std::uint64_t salt = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      config.fleet.size = std::atoi(next());
    } else if (std::strcmp(argv[i], "--days") == 0) {
      config.study_days = std::atoi(next());
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--grid") == 0) {
      config.topology.grid_width = std::atoi(next());
      config.topology.grid_height = config.topology.grid_width;
    } else if (std::strcmp(argv[i], "--anonymize") == 0) {
      do_anonymize = true;
      salt = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out = next();
    } else {
      usage(argv[0]);
    }
  }
  if (config.fleet.size <= 0 || config.study_days <= 0 ||
      config.topology.grid_width <= 0) {
    usage(argv[0]);
  }

  std::fprintf(stderr, "simulating %d cars x %d days (grid %dx%d, seed %llu)...\n",
               config.fleet.size, config.study_days,
               config.topology.grid_width, config.topology.grid_height,
               static_cast<unsigned long long>(config.seed));
  sim::Study study = sim::simulate(config);
  cdr::Dataset dataset = std::move(study.raw);
  if (do_anonymize) {
    dataset = cdr::anonymize(dataset, {.salt = salt});
    std::fprintf(stderr, "anonymized with salt %llu\n",
                 static_cast<unsigned long long>(salt));
  }

  const bool binary = out.size() > 4 && out.substr(out.size() - 4) == ".bin";
  try {
    if (binary) {
      cdr::write_binary(dataset, out);
    } else {
      cdr::write_csv(dataset, out);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "write failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu records to %s (%s)\n", dataset.size(),
               out.c_str(), binary ? "CCDR1 binary" : "CSV");
  return 0;
}
