// live_monitor: a fleet-operations dashboard on the streaming engine.
//
// The batch examples answer "what happened over the study"; this one shows
// what an operator sees *while it happens*. A simulated CDR feed is replayed
// in 15-minute ticks through stream::ShardedEngine; after each tick the
// monitor snapshots the engine (without stopping it) and prints
//
//   - the concurrency curve of the last day: cars connected per 15-min bin
//     (Fig 10's quantity, folded live behind the watermark),
//   - the busiest cells right now (connections + median session length),
//   - running totals: records seen, quarantined-late, open sessions.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/live_monitor
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "stream/engine.h"
#include "stream/feed.h"
#include "stream/report.h"
#include "util/ascii_plot.h"
#include "util/time.h"

int main() {
  using namespace ccms;

  // A week of a small fleet keeps the replay instant; crank these up freely.
  sim::SimConfig config = sim::SimConfig::quick();
  config.fleet.size = 400;
  config.study_days = 7;
  const sim::Study study = sim::simulate(config);
  std::printf("live_monitor: replaying %zu records from %d cars over %d "
              "days in 15-minute ticks\n\n",
              study.raw.size(), config.fleet.size, config.study_days);

  stream::StreamConfig stream_config = stream::config_for(study.raw, 4);
  stream_config.recent_bins = time::kBins15PerDay;  // keep one day on screen
  stream_config.top_cells = 8;
  stream::ShardedEngine engine(stream_config);
  stream::DatasetFeed feed(study.raw);

  const time::Seconds horizon =
      static_cast<time::Seconds>(config.study_days) * time::kSecondsPerDay;
  const time::Seconds report_every = 2 * time::kSecondsPerDay;
  time::Seconds next_report = report_every;

  for (time::Seconds now = 0; now < horizon && !feed.exhausted();
       now += time::kSecondsPerBin15) {
    feed.advance_to(now, engine);
    if (now < next_report) continue;
    next_report += report_every;

    const stream::StreamReport live = engine.snapshot();
    std::printf("== day %lld, %zu/%zu records fed, watermark %lld s ==\n",
                static_cast<long long>(time::day_index(now)), feed.fed(),
                feed.total(), static_cast<long long>(live.engine.watermark));
    std::printf("   accepted %llu, quarantined late %llu, open sessions "
                "%llu, closed %llu\n",
                static_cast<unsigned long long>(live.ingest.records_accepted),
                static_cast<unsigned long long>(live.ingest.records_dropped),
                static_cast<unsigned long long>(live.sessions_open),
                static_cast<unsigned long long>(live.sessions_closed));

    // Concurrency over the retained window (finalized bins only).
    std::vector<util::PlotPoint> curve;
    for (const stream::BinCounts& bin : live.recent_bins) {
      if (bin.provisional) continue;
      curve.push_back({static_cast<double>(bin.bin) / 4.0,  // bin -> hours
                       static_cast<double>(bin.cars)});
    }
    if (!curve.empty()) {
      util::PlotOptions options;
      options.height = 10;
      options.y_label = "cars connected per 15-min bin";
      options.x_label = "study hour";
      std::fputs(util::render_line(curve, options).c_str(), stdout);
    }

    std::printf("   busiest cells so far:\n");
    for (const stream::CellActivity& cell : live.top_cells) {
      std::printf("     cell %5u  %8llu connections  median %.0f s  "
                  "active %d days\n",
                  cell.cell, static_cast<unsigned long long>(cell.connections),
                  cell.median_s, cell.days_active);
    }
    std::printf("\n");
  }

  engine.finish();
  const stream::StreamReport final_report = engine.snapshot();
  std::printf("feed drained: %llu records integrated across %d shards, "
              "%llu sessions total\n",
              static_cast<unsigned long long>(
                  final_report.engine.records_integrated),
              stream_config.shards,
              static_cast<unsigned long long>(final_report.sessions_closed));
  return 0;
}
