// fota_campaign: the managed FOTA scenario the paper sketches in S4.3.
//
//   "In some managed FOTA scenario, rare cars would be prioritized over the
//    limited FOTA campaign window, and common cars would be perhaps
//    randomized or scheduled depending on the typical time they connect. In
//    particular, cars that typically appear during busy hours will likely
//    need special treatment to avoid impacting the network and other users."
//
// The planning itself lives in the library (sim::plan_campaign); this
// example assembles its inputs from the Table 2 machinery and reports the
// plan and the utilisation impact it avoids.
#include <cstdio>
#include <cstdlib>

#include "cdr/clean.h"
#include "core/busy_time.h"
#include "core/days_histogram.h"
#include "core/load_view.h"
#include "sim/fota.h"
#include "sim/simulator.h"

int main(int argc, char** argv) {
  using namespace ccms;
  const double update_mb = argc > 1 ? std::atof(argv[1]) : 500.0;

  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = 1500;
  const sim::Study study = sim::simulate(config);
  const auto load = core::CellLoad::from_background(study.background);
  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, clean_report);

  std::printf("FOTA campaign planner: %.0f MB update for %zu cars\n\n",
              update_mb, study.fleet.size());

  // Assemble planner inputs from the S4.3 analyses.
  const core::DaysOnNetwork days = core::analyze_days_on_network(cleaned);
  const core::BusyTime busy = core::analyze_busy_time(cleaned, load);

  std::vector<sim::FotaCarInput> inputs;
  for (std::size_t i = 0; i < days.cars.size(); ++i) {
    const fleet::CarProfile& car = study.fleet[days.cars[i].value];
    auto cell = study.topology.cell_at(car.home, SectorId{0},
                                       car.preferred_carrier);
    if (!cell) cell = study.topology.cell_at(car.home, SectorId{0},
                                             CarrierId{0});
    if (!cell) continue;
    inputs.push_back({days.cars[i], days.days_per_car[i],
                      busy.per_car[i].share, *cell});
  }

  sim::CampaignConfig campaign_config;
  campaign_config.update_mb = update_mb;
  const sim::CampaignPlan plan = sim::plan_campaign(
      inputs, study.background, study.topology.cells(), campaign_config);

  // Per-policy aggregates.
  std::array<double, 3> naive_h{}, planned_h{};
  std::array<std::size_t, 3> finished{};
  for (const sim::CarPlan& p : plan.cars) {
    if (p.planned_seconds < 0 || p.naive_seconds < 0) continue;
    const auto k = static_cast<std::size_t>(p.policy);
    naive_h[k] += p.naive_seconds / 3600.0;
    planned_h[k] += p.planned_seconds / 3600.0;
    ++finished[k];
  }
  std::printf("%-26s %6s %18s %18s\n", "policy", "cars", "naive dl (h/car)",
              "planned dl (h/car)");
  for (int k = 0; k < 3; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const auto n = std::max<std::size_t>(1, finished[i]);
    std::printf("%-26s %6zu %18.2f %18.2f\n",
                sim::name(static_cast<sim::DeliveryPolicy>(k)),
                plan.policy_counts[i], naive_h[i] / n, planned_h[i] / n);
  }
  std::printf("\ncampaign total: %zu cars, %.0f device-hours naive vs %.0f "
              "planned (%.0f%% saved); %zu cars on saturated cells "
              "deferred\n",
              plan.cars.size(), plan.naive_hours, plan.planned_hours,
              plan.saved_fraction() * 100, plan.deferred);

  // Show the Fig 1 effect the planner avoids: a peak-hour download on a
  // busy cell vs the same download at 02:00.
  const auto busy_cells = sim::pick_test_cells(
      study.background, study.topology.cells(), 1, 0.66, 0.78);
  if (!busy_cells.empty()) {
    const double at_peak = sim::fota_download_seconds(
        study.background, study.topology.cells(), busy_cells[0], update_mb,
        campaign_config.naive_bin);
    const double at_night = sim::fota_download_seconds(
        study.background, study.topology.cells(), busy_cells[0], update_mb,
        campaign_config.offpeak_bin);
    std::printf("\nbusy-cell exhibit: %.0f MB at 19:00 takes %.1f h of "
                "near-saturation; at 02:00 it takes %.1f h\n",
                update_mb, at_peak / 3600.0, at_night / 3600.0);
  }
  return 0;
}
