// quickstart: the smallest end-to-end use of the library.
//
//   1. simulate a small synthetic study (network + fleet -> CDRs),
//   2. clean the records the way the paper does (S3),
//   3. run two headline analyses (connected time, per-cell durations),
//   4. export the CDRs to CSV and load them back.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "cdr/clean.h"
#include "cdr/io.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "sim/simulator.h"

int main() {
  using namespace ccms;

  // 1. Simulate: 500 cars, 30 days, deterministic seed.
  sim::SimConfig config = sim::SimConfig::quick();
  config.fleet.size = 500;
  config.study_days = 30;
  const sim::Study study = sim::simulate(config);
  std::printf("simulated %zu radio connections from %zu cars on %zu cells\n",
              study.raw.size(), study.fleet.size(),
              study.topology.cells().size());

  // 2. Clean: drop the exactly-1-hour reporting artifacts.
  cdr::CleanReport report;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, report);
  std::printf("cleaning removed %zu records (%zu were 1-hour artifacts)\n",
              report.total_removed(), report.hour_artifacts_removed);

  // 3. Analyze.
  const core::ConnectedTime ct = core::analyze_connected_time(cleaned);
  std::printf("cars spend on average %.1f%% of the study connected "
              "(%.1f%% after 600 s truncation)\n",
              ct.mean_full * 100, ct.mean_truncated * 100);

  const core::CellSessionStats sessions = core::analyze_cell_sessions(cleaned);
  std::printf("per-cell connections: median %.0f s, mean %.0f s "
              "(%.0f s truncated)\n",
              sessions.median, sessions.mean_full, sessions.mean_truncated);

  // 4. Round-trip through CSV, as you would with your own CDR export.
  const std::string path = "/tmp/ccms_quickstart.csv";
  cdr::write_csv(cleaned, path);
  const cdr::Dataset reloaded = cdr::read_csv(path);
  std::printf("exported and reloaded %zu records via %s\n", reloaded.size(),
              path.c_str());
  return 0;
}
