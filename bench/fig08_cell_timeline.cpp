// Figure 8: "Concurrent cars in one cell over 24 hours" — every car's
// connections to the busiest cell on one day, one row per car, with the
// most-concurrent 15-minute bin marked (the paper's exhibit had 377 cars,
// max 16 concurrent).
#include <cstdio>

#include "bench_common.h"
#include "core/cell_sessions.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 8: one cell's car connections over 24 hours",
      "connections short; rare overnight; high concurrency (377 cars, max 16 "
      "per 15-min bin in the paper's cell - absolute counts scale with fleet "
      "size)");

  const bench::BenchStudy bench = bench::make_bench_study();

  // A midweek day clear of the data-loss window.
  const int day = std::min(16, bench.cleaned.study_days() - 1);
  const core::BusiestCell best = core::busiest_cell_by_cars(bench.cleaned, day);
  const core::CellDayTimeline timeline =
      core::cell_day_timeline(bench.cleaned, best.cell, day);

  std::printf("cell %u on day %d: %zu distinct cars, max %d concurrent in "
              "15-min bin %d (%s)\n\n",
              best.cell.value, day, timeline.cars.size(),
              timeline.max_concurrent, timeline.max_concurrent_bin,
              time::format_hhmm(timeline.max_concurrent_bin *
                                time::kSecondsPerBin15)
                  .c_str());

  std::printf("car,start_hhmm,duration_s\n");
  const time::Seconds day_start =
      static_cast<time::Seconds>(day) * time::kSecondsPerDay;
  for (const core::CellDayCar& row : timeline.cars) {
    for (const time::Interval& iv : row.connections) {
      std::printf("%u,%s,%lld\n", row.car.value,
                  time::format_hhmm(iv.start).c_str(),
                  static_cast<long long>(iv.duration()));
    }
  }

  // One row per car, spans as fractions of the day.
  std::vector<util::SpanRow> rows;
  for (const core::CellDayCar& row : timeline.cars) {
    util::SpanRow r;
    for (const time::Interval& iv : row.connections) {
      r.spans.push_back(
          {static_cast<double>(iv.start - day_start) / time::kSecondsPerDay,
           static_cast<double>(iv.end - day_start) / time::kSecondsPerDay});
    }
    rows.push_back(std::move(r));
  }
  std::printf("\nrows = cars, x = time of day (00:00..24:00):\n%s",
              util::render_span_rows(rows, 72, 60).c_str());
  return 0;
}
