// Figure 9: "Duration of cars' connections per radio cell" — CDF of
// per-cell connection durations (median 105 s, p73 at 600 s, means 625 s
// full / 238 s truncated).
#include <cstdio>

#include "bench_common.h"
#include "core/cell_sessions.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 9: per-cell connection duration CDF",
      "median 105 s; 73rd percentile at 600 s; mean 625 s full / 238 s "
      "truncated");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::CellSessionStats stats =
      core::analyze_cell_sessions(bench.cleaned);

  std::printf("seconds,cdf\n");
  std::vector<util::PlotPoint> points;
  for (int s = 0; s <= 5000; s += 100) {
    const double p = stats.durations.cdf(s);
    std::printf("%d,%.4f\n", s, p);
    points.push_back({static_cast<double>(s), p});
  }

  util::PlotOptions options;
  options.y_min = 0;
  options.y_max = 1;
  options.x_label = "seconds";
  options.y_label = "cumulative distribution";
  std::printf("\n%s\n", util::render_line(points, options).c_str());

  core::print_cell_sessions(std::cout, stats);
  std::printf("quantiles: p10 %.0f s, p25 %.0f s, p50 %.0f s, p73 %.0f s, "
              "p90 %.0f s, p99 %.0f s\n",
              stats.durations.quantile(0.10), stats.durations.quantile(0.25),
              stats.durations.quantile(0.50), stats.durations.quantile(0.73),
              stats.durations.quantile(0.90), stats.durations.quantile(0.99));
  return 0;
}
