// Table 3: "Carrier use of connected cars" — % of cars that ever connect to
// each carrier C1..C5 and % of total connected time per carrier.
#include "bench_common.h"
#include "core/carrier_usage.h"
#include "core/report.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Table 3: carrier use of connected cars",
      "cars: 98.7/89.2/98.7/80.8/0.006 %; time: 18.6/7.4/51.9/22.1/~0 % - "
      "C3+C4 carry ~75% of connected time");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::CarrierUsage usage =
      core::analyze_carrier_usage(bench.cleaned, bench.study.topology.cells());
  core::print_carriers(std::cout, usage);
  return 0;
}
