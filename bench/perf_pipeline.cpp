// google-benchmark microbenchmarks of the analysis pipeline itself: how fast
// the library chews through CDRs. (The per-figure binaries measure fidelity;
// this one measures throughput.) Besides the google-benchmark table, the
// binary emits machine-readable BENCH_pipeline.json (end-to-end batch pass:
// records/sec, wall seconds, peak RSS), BENCH_batch.json (full run_study
// swept over executor widths 1,2,4,..,--threads with speedup_vs_1t) and
// BENCH_ingest.json (front-of-pipeline generate/ingest/finalize/analyze
// phase sweep at widths 1 and --threads, with a bitwise-determinism check
// across widths) for CI regression diffing. Schemas: bench/BENCH_SCHEMA.md.
//
// Flags / env: --threads N (sweep ceiling, default 8, 0 = hardware
// concurrency — resolved before it reaches any JSON; stripped before
// google-benchmark sees the argv), CCMS_BENCH_OUT (BENCH_pipeline.json
// path), CCMS_BENCH_BATCH_OUT (BENCH_batch.json path),
// CCMS_BENCH_INGEST_OUT (BENCH_ingest.json path), CCMS_CARS / CCMS_DAYS
// (ingest-sweep fixture size).
//
// Out-of-core batch mode (the paper-scale path): `--out-of-core` with
// `--cars N --days D` streams an N-car, D-day study through the CCDR2
// pipeline — per-car generation -> external sort -> columnar file ->
// run_study_columnar — without ever materializing the trace, and writes
// BENCH_batch.json with mode "out_of_core" plus peak-RSS / bytes-spilled
// columns. `--data-dir DIR` places the spill runs and the columnar file
// (default ./ccms_bench_data); `--assert-rss` makes the process exit
// non-zero if peak RSS exceeds 25% of the in-memory AoS footprint (the CI
// scale job's ceiling). In this mode the microbenchmarks and the other
// JSON artifacts are skipped so ru_maxrss measures the out-of-core run
// alone.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/cell_sessions.h"
#include "core/days_histogram.h"

#include "cdr/clean.h"
#include "cdr/columnar.h"
#include "cdr/io.h"
#include "cdr/session.h"
#include "exec/external_sort.h"
#include "exec/thread_pool.h"
#include "core/busy_time.h"
#include "core/concurrency.h"
#include "core/connected_time.h"
#include "core/presence.h"
#include "core/study.h"
#include "sim/simulator.h"
#include "stats/kmeans.h"
#include "stats/p2_quantile.h"
#include "stats/quantile.h"

namespace {

using namespace ccms;

const sim::Study& shared_study() {
  static const sim::Study study = [] {
    sim::SimConfig config;
    config.fleet.size = 400;
    config.study_days = 28;
    config.topology.grid_width = 16;
    config.topology.grid_height = 16;
    return sim::simulate(config);
  }();
  return study;
}

void BM_Simulate(benchmark::State& state) {
  sim::SimConfig config;
  config.fleet.size = static_cast<int>(state.range(0));
  config.study_days = 14;
  config.topology.grid_width = 16;
  config.topology.grid_height = 16;
  std::size_t records = 0;
  for (auto _ : state) {
    const sim::Study study = sim::simulate(config);
    records = study.raw.size();
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulate)->Arg(100)->Arg(400);

void BM_Clean(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    cdr::CleanReport report;
    const cdr::Dataset cleaned = cdr::clean(study.raw, {}, report);
    benchmark::DoNotOptimize(cleaned.size());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Clean);

void BM_SessionAggregation(benchmark::State& state) {
  const sim::Study& study = shared_study();
  const auto gap = static_cast<time::Seconds>(state.range(0));
  for (auto _ : state) {
    std::size_t sessions = 0;
    study.raw.for_each_car(
        [&](CarId, std::span<const cdr::Connection> conns) {
          sessions += cdr::aggregate_sessions(conns, gap).size();
        });
    benchmark::DoNotOptimize(sessions);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionAggregation)->Arg(30)->Arg(600);

void BM_UnionConnectedTime(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto ct = core::analyze_connected_time(study.raw);
    benchmark::DoNotOptimize(ct.mean_full);
  }
}
BENCHMARK(BM_UnionConnectedTime);

void BM_Presence(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto presence = core::analyze_presence(study.raw);
    benchmark::DoNotOptimize(presence.cars_overall.mean);
  }
}
BENCHMARK(BM_Presence);

void BM_BusyTime(benchmark::State& state) {
  const sim::Study& study = shared_study();
  const auto load = core::CellLoad::from_background(study.background);
  for (auto _ : state) {
    const auto busy = core::analyze_busy_time(study.raw, load);
    benchmark::DoNotOptimize(busy.fraction_over_half);
  }
}
BENCHMARK(BM_BusyTime);

void BM_ConcurrencyGrid(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto grid = core::ConcurrencyGrid::build(study.raw);
    benchmark::DoNotOptimize(grid.cells().size());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrencyGrid);

void BM_KMeans96d(benchmark::State& state) {
  // Fig 11's workload shape: N 96-dim vectors, k = 2.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v(96);
    const double level = i % 5 == 0 ? 8.0 : 1.5;
    for (auto& x : v) x = level + rng.normal(0, 0.4);
    points.push_back(std::move(v));
  }
  for (auto _ : state) {
    util::Rng krng(11);
    const auto result = stats::kmeans(points, {.k = 2}, krng);
    benchmark::DoNotOptimize(result.inertia);
  }
}
BENCHMARK(BM_KMeans96d)->Arg(100)->Arg(1000);

void BM_QuantileExact(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.lognormal_median(105.0, 1.2);
  for (auto _ : state) {
    auto copy = sample;
    const stats::EmpiricalDistribution dist(std::move(copy));
    benchmark::DoNotOptimize(dist.quantile(0.73));
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(sample.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QuantileExact)->Arg(100000)->Arg(1000000);

void BM_QuantileP2(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.lognormal_median(105.0, 1.2);
  for (auto _ : state) {
    stats::P2Quantile est(0.73);
    for (const double x : sample) est.add(x);
    benchmark::DoNotOptimize(est.value());
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(sample.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QuantileP2)->Arg(100000)->Arg(1000000);

// One timed end-to-end batch pass (clean + the Fig 2/3/6/9 analyzers) over
// the shared study, written to BENCH_pipeline.json. The google-benchmark
// table remains the per-stage source of truth; this artifact is the single
// number CI tracks across commits.
void write_pipeline_json() {
  const sim::Study& study = shared_study();
  const bench::Stopwatch timer;
  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, clean_report);
  const auto presence = core::analyze_presence(cleaned);
  const auto connected = core::analyze_connected_time(cleaned, 600);
  const auto days = core::analyze_days_on_network(cleaned);
  const auto sessions = core::analyze_cell_sessions(cleaned, 600);
  const double wall_s = timer.seconds();
  benchmark::DoNotOptimize(presence.cars_fraction.size());
  benchmark::DoNotOptimize(connected.full.size());
  benchmark::DoNotOptimize(days.days_per_car.size());
  benchmark::DoNotOptimize(sessions.median);

  const auto records = static_cast<std::uint64_t>(study.raw.size());
  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_pipeline")
          .add("records", records)
          .add("cars", study.config.fleet.size)
          .add("study_days", study.config.study_days)
          .add("wall_s", wall_s)
          .add("records_per_s",
               wall_s > 0 ? static_cast<double>(records) / wall_s : 0)
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_pipeline.json", json);
}

// Full run_study (every §4 analysis) swept over executor widths
// 1, 2, 4, .., max_threads, written to BENCH_batch.json. speedup_vs_1t is
// the scaling curve CI tracks; the report is bitwise identical across rows
// by construction, so only time varies.
void write_batch_json(int max_threads) {
  const sim::Study& study = shared_study();
  const auto load = core::CellLoad::from_background(study.background);
  const auto records = static_cast<std::uint64_t>(study.raw.size());

  std::vector<int> widths;
  for (int t = 1; t < max_threads; t *= 2) widths.push_back(t);
  widths.push_back(max_threads);

  bench::JsonArray rows;
  double wall_1t = 0;
  std::printf("run_study sweep: threads      wall_s    records/s   speedup\n");
  for (const int threads : widths) {
    core::StudyOptions options;
    options.threads = threads;
    const bench::Stopwatch timer;
    const core::StudyReport report =
        core::run_study(study.raw, study.topology.cells(), load, options);
    const double wall_s = timer.seconds();
    benchmark::DoNotOptimize(report.carriers.car_count);
    if (threads == 1) wall_1t = wall_s;
    const double speedup = wall_s > 0 ? wall_1t / wall_s : 0;
    std::printf("                %7d %11.3f %12.0f %8.2fx\n", threads, wall_s,
                wall_s > 0 ? static_cast<double>(records) / wall_s : 0,
                speedup);
    rows.push(bench::JsonObject()
                  .add("threads", threads)
                  .add("wall_s", wall_s)
                  .add("records_per_s",
                       wall_s > 0 ? static_cast<double>(records) / wall_s : 0)
                  .add("speedup_vs_1t", speedup)
                  .dump());
  }

  const auto aos_bytes = records * sizeof(cdr::Connection);
  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_batch")
          .add("mode", "in_memory")
          .add("records", records)
          .add("cars", study.config.fleet.size)
          .add("study_days", study.config.study_days)
          .add("aos_bytes", aos_bytes)
          .add("rss_budget_bytes", std::uint64_t{0})
          .add("bytes_spilled", std::uint64_t{0})
          .add("spill_runs", std::uint64_t{0})
          .add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()))
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("thread_runs", rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_BATCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_batch.json", json);
}

// Paper-scale batch on one box: stream-generate `cars` x `days`, external-
// sort into a CCDR2 columnar file, then run the whole §4 study out of core
// at widths 1 and max_threads, asserting the reports match bitwise. Peak
// memory never holds the trace: generation emits one car at a time into the
// sorter's bounded buffer, and the study streams decoded blocks. Writes
// BENCH_batch.json with mode "out_of_core". Returns false if the width
// sweep diverges or (with assert_rss) the RSS ceiling is exceeded.
bool write_batch_json_out_of_core(int max_threads, int cars, int days,
                                  const std::string& data_dir,
                                  bool assert_rss) {
  namespace fs = std::filesystem;
  fs::create_directories(data_dir);

  sim::SimConfig config;
  config.fleet.size = cars;
  config.study_days = days;
  // Scale the grid with the fleet so per-cell load stays in the paper's
  // regime; cap it so the topology/load tables stay a small fraction of
  // the RSS budget.
  const int grid = std::clamp(
      static_cast<int>(std::sqrt(static_cast<double>(cars) / 2.5)), 16, 128);
  config.topology.grid_width = grid;
  config.topology.grid_height = grid;

  std::printf("out-of-core batch: %d cars x %d days (grid %dx%d)\n", cars,
              days, grid, grid);
  const bench::Stopwatch world_timer;
  const sim::StreamSim sim(config);
  std::printf("  world built (%zu cars, %zu cells): %.1fs\n",
              sim.fleet().size(), sim.topology().cells().size(),
              world_timer.seconds());

  // Phase 1: per-car generation -> external sort -> columnar file. The
  // sorter's spill buffer and the writer's pending block are the only
  // record storage alive.
  const std::string columnar_path = data_dir + "/ccms_batch.ccdr2";
  std::uint64_t bytes_spilled = 0;
  std::uint64_t spill_runs = 0;
  std::uint64_t records = 0;
  const bench::Stopwatch gen_timer;
  {
    exec::ExternalSorter<cdr::Connection, cdr::ByCarThenStart> sorter(
        {.spill_dir = data_dir, .run_records = exec::kDefaultRunRecords,
         .threads = 1});
    std::vector<cdr::Connection> raw_scratch;
    std::vector<cdr::Connection> car_records;
    for (std::size_t i = 0; i < sim.fleet().size(); ++i) {
      car_records.clear();
      sim.emit_car(i, raw_scratch, car_records);
      for (const cdr::Connection& c : car_records) sorter.add(c);
    }
    std::ofstream out(columnar_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "[bench] cannot open " << columnar_path << "\n";
      return false;
    }
    cdr::ColumnarWriter writer(out, static_cast<std::uint32_t>(cars), days);
    sorter.merge([&](const cdr::Connection& c) { writer.add(c); });
    records = writer.finish();
    bytes_spilled = sorter.bytes_spilled();
    spill_runs = sorter.run_count();
  }
  const double gen_s = gen_timer.seconds();
  const auto columnar_bytes =
      static_cast<std::uint64_t>(fs::file_size(columnar_path));
  std::printf(
      "  generate+sort+write: %.1fs (%llu records, %llu spill bytes in %llu "
      "runs, %llu columnar bytes)\n",
      gen_s, static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(bytes_spilled),
      static_cast<unsigned long long>(spill_runs),
      static_cast<unsigned long long>(columnar_bytes));

  // Phase 2: the full §4 study, streamed from the columnar file at widths
  // 1 and max_threads. Reports must match bitwise (the determinism
  // acceptance gate).
  const auto load = core::CellLoad::from_background(sim.background());
  std::vector<int> widths = {1};
  if (max_threads > 1) widths.push_back(max_threads);

  bench::JsonArray rows;
  bool deterministic = true;
  double wall_1t = 0;
  std::optional<core::StudyReport> golden;
  std::printf("run_study_columnar:  threads      wall_s    records/s\n");
  for (const int threads : widths) {
    core::StudyOptions options;
    options.threads = threads;
    // Re-reading our own trace: simulated traces can contain legitimate
    // exact duplicates, so the duplicate screen stays off.
    options.ingest.check_duplicates = false;
    const bench::Stopwatch timer;
    core::StudyReport report = core::run_study_columnar(
        columnar_path, sim.topology().cells(), load, options);
    const double wall_s = timer.seconds();
    benchmark::DoNotOptimize(report.carriers.car_count);
    if (threads == widths.front()) {
      wall_1t = wall_s;
      golden.emplace(std::move(report));
    } else {
      std::string why;
      if (!core::study_reports_identical(*golden, report, &why)) {
        std::cerr << "[bench] OUT-OF-CORE REPORT DIVERGES ACROSS WIDTHS: "
                  << why << "\n";
        deterministic = false;
      }
    }
    std::printf("                     %7d %11.1f %12.0f\n", threads, wall_s,
                wall_s > 0 ? static_cast<double>(records) / wall_s : 0);
    rows.push(bench::JsonObject()
                  .add("threads", threads)
                  .add("wall_s", wall_s)
                  .add("records_per_s",
                       wall_s > 0 ? static_cast<double>(records) / wall_s : 0)
                  .add("speedup_vs_1t", wall_s > 0 ? wall_1t / wall_s : 0)
                  .dump());
  }

  const std::uint64_t aos_bytes = records * sizeof(cdr::Connection);
  const std::uint64_t rss_budget = aos_bytes / 4;  // 25% of the AoS trace
  const std::uint64_t peak_rss = bench::peak_rss_bytes();
  const bool rss_ok = peak_rss <= rss_budget;
  std::printf("  peak RSS %.2f GiB vs budget %.2f GiB (25%% of %.2f GiB AoS)"
              " -> %s\n",
              static_cast<double>(peak_rss) / (1 << 30),
              static_cast<double>(rss_budget) / (1 << 30),
              static_cast<double>(aos_bytes) / (1 << 30),
              rss_ok ? "within budget" : "OVER BUDGET");

  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_batch")
          .add("mode", "out_of_core")
          .add("records", records)
          .add("cars", cars)
          .add("study_days", days)
          .add("aos_bytes", aos_bytes)
          .add("rss_budget_bytes", rss_budget)
          .add("rss_within_budget", rss_ok)
          .add("bytes_spilled", bytes_spilled)
          .add("spill_runs", spill_runs)
          .add("columnar_bytes", columnar_bytes)
          .add("generate_sort_write_s", gen_s)
          .add("deterministic", deterministic)
          .add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()))
          .add("peak_rss_bytes", peak_rss)
          .raw("thread_runs", rows.dump())
          .dump();
  const char* out_env = std::getenv("CCMS_BENCH_BATCH_OUT");
  bench::write_bench_json(
      out_env != nullptr ? out_env : "BENCH_batch.json", json);

  std::error_code ec;
  fs::remove(columnar_path, ec);  // spill runs were removed by the merge
  if (assert_rss && !rss_ok) {
    std::cerr << "[bench] PEAK RSS EXCEEDS THE 25% OUT-OF-CORE BUDGET\n";
    return false;
  }
  return deterministic;
}

// Front-of-pipeline phase sweep — generate / ingest / finalize / analyze —
// at executor widths 1 and max_threads, written to BENCH_ingest.json. Each
// phase row reports wall seconds and records/s; the top-level
// `deterministic` flag asserts the PR invariant that every phase's output at
// every width is bitwise identical to the 1-thread run. Fixture size comes
// from CCMS_CARS / CCMS_DAYS (defaults 2000 cars, 28 days). Returns the
// determinism verdict so main() can fail the run on a mismatch.
bool write_ingest_json(int max_threads) {
  const char* cars_env = std::getenv("CCMS_CARS");
  const char* days_env = std::getenv("CCMS_DAYS");
  const int cars = cars_env != nullptr ? std::atoi(cars_env) : 2000;
  const int days = days_env != nullptr ? std::atoi(days_env) : 28;

  std::vector<int> widths = {1};
  if (max_threads > 1) widths.push_back(max_threads);

  bench::JsonArray rows;
  bool deterministic = true;
  std::string golden_raw;    // width-1 generated trace, serialized
  std::string golden_final;  // width-1 re-finalized shuffled dataset
  std::uint64_t records = 0;

  std::printf(
      "front-of-pipeline sweep: threads      phase      wall_s    records/s\n");
  for (const int w : widths) {
    sim::SimConfig config;
    config.fleet.size = cars;
    config.study_days = days;
    config.topology.grid_width = 24;
    config.topology.grid_height = 24;
    config.threads = w;

    const bench::Stopwatch gen_timer;
    const sim::Study study = sim::simulate(config);
    const double gen_s = gen_timer.seconds();
    records = static_cast<std::uint64_t>(study.raw.size());

    const std::string bytes = cdr::write_binary_buffer(study.raw);

    cdr::IngestOptions options;
    options.threads = w;
    // Re-loading our own trace: simulated traces can contain legitimate
    // exact duplicates, so the duplicate screen stays off for a bitwise
    // round trip.
    options.check_duplicates = false;
    cdr::IngestReport report;
    const bench::Stopwatch ingest_timer;
    const cdr::Dataset ingested =
        cdr::read_binary_buffer(bytes, options, report, "bench");
    const double ingest_s = ingest_timer.seconds();

    // Deterministically shuffled copy so finalize() has real sorting work
    // (the simulator's output is already nearly in (car, start) order).
    std::vector<cdr::Connection> shuffled(study.raw.all().begin(),
                                          study.raw.all().end());
    util::Rng shuffle_rng(42);
    shuffle_rng.shuffle(shuffled);
    cdr::Dataset unsorted;
    unsorted.set_fleet_size(study.raw.fleet_size());
    unsorted.set_study_days(study.raw.study_days());
    unsorted.reserve(shuffled.size());
    unsorted.add(shuffled);
    exec::ThreadPool pool(w);
    const bench::Stopwatch fin_timer;
    unsorted.finalize(pool);
    const double fin_s = fin_timer.seconds();

    const auto load = core::CellLoad::from_background(study.background);
    core::StudyOptions study_options;
    study_options.threads = w;
    const bench::Stopwatch an_timer;
    const core::StudyReport sr =
        core::run_study(study.raw, study.topology.cells(), load, study_options);
    const double an_s = an_timer.seconds();
    benchmark::DoNotOptimize(sr.carriers.car_count);

    // Bitwise determinism: the generated trace, the ingested round-trip and
    // the re-finalized dataset must serialize to the width-1 bytes exactly.
    const std::string final_bytes = cdr::write_binary_buffer(unsorted);
    const std::string ingested_bytes = cdr::write_binary_buffer(ingested);
    if (w == widths.front()) {
      golden_raw = bytes;
      golden_final = final_bytes;
    } else if (bytes != golden_raw || final_bytes != golden_final) {
      deterministic = false;
    }
    if (ingested_bytes != bytes || final_bytes != bytes) {
      deterministic = false;
    }

    const auto row = [&](const char* phase, double wall_s, std::uint64_t n) {
      std::printf("                         %7d %10s %11.3f %12.0f\n", w,
                  phase, wall_s,
                  wall_s > 0 ? static_cast<double>(n) / wall_s : 0);
      rows.push(bench::JsonObject()
                    .add("threads", w)
                    .add("phase", phase)
                    .add("wall_s", wall_s)
                    .add("records_per_s",
                         wall_s > 0 ? static_cast<double>(n) / wall_s : 0)
                    .dump());
    };
    row("generate", gen_s, records);
    row("ingest", ingest_s,
        static_cast<std::uint64_t>(report.records_accepted));
    row("finalize", fin_s, records);
    row("analyze", an_s, records);
  }

  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_ingest")
          .add("records", records)
          .add("cars", cars)
          .add("study_days", days)
          .add("threads_max", max_threads)
          .add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()))
          .add("deterministic", deterministic)
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("phase_runs", rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_INGEST_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_ingest.json", json);
  if (!deterministic) {
    std::cerr << "[bench] FRONT-OF-PIPELINE OUTPUT DIVERGES ACROSS THREAD "
                 "WIDTHS\n";
  }
  return deterministic;
}

// Our flags, consumed before google-benchmark parses (and would reject)
// them. threads is returned *resolved*: `--threads 0` means hardware
// concurrency, so every BENCH_*.json records the real width it ran at,
// never a literal 0.
struct BenchFlags {
  int threads = 8;
  int cars = 0;  ///< 0 = use each artifact's own default fixture
  int days = 0;
  bool out_of_core = false;
  bool assert_rss = false;
  std::string data_dir = "ccms_bench_data";
};

BenchFlags strip_flags(int& argc, char** argv) {
  BenchFlags flags;
  int w = 1;
  const auto int_flag = [&](const char* name, int r, int& value) {
    const std::size_t len = std::strlen(name);
    if (std::strcmp(argv[r], name) == 0 && r + 1 < argc) {
      value = std::atoi(argv[r + 1]);
      return 2;
    }
    if (std::strncmp(argv[r], name, len) == 0 && argv[r][len] == '=') {
      value = std::atoi(argv[r] + len + 1);
      return 1;
    }
    return 0;
  };
  for (int r = 1; r < argc;) {
    int used = int_flag("--threads", r, flags.threads);
    if (used == 0) used = int_flag("--cars", r, flags.cars);
    if (used == 0) used = int_flag("--days", r, flags.days);
    if (used != 0) {
      r += used;
      continue;
    }
    if (std::strcmp(argv[r], "--out-of-core") == 0) {
      flags.out_of_core = true;
      ++r;
      continue;
    }
    if (std::strcmp(argv[r], "--assert-rss") == 0) {
      flags.assert_rss = true;
      ++r;
      continue;
    }
    if (std::strcmp(argv[r], "--data-dir") == 0 && r + 1 < argc) {
      flags.data_dir = argv[r + 1];
      r += 2;
      continue;
    }
    if (std::strncmp(argv[r], "--data-dir=", 11) == 0) {
      flags.data_dir = argv[r] + 11;
      ++r;
      continue;
    }
    argv[w++] = argv[r++];
  }
  argc = w;
  if (flags.threads < 0) flags.threads = 8;
  flags.threads = exec::ThreadPool::resolve_threads(flags.threads);
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = strip_flags(argc, argv);
  if (flags.out_of_core) {
    // Out-of-core mode runs alone: ru_maxrss is a process-lifetime maximum,
    // so the in-memory fixtures and microbenchmarks would mask the number
    // the 25% budget is asserting on.
    const bool ok = write_batch_json_out_of_core(
        flags.threads, flags.cars > 0 ? flags.cars : 1000000,
        flags.days > 0 ? flags.days : 90, flags.data_dir, flags.assert_rss);
    return ok ? 0 : 1;
  }
  write_pipeline_json();
  write_batch_json(flags.threads);
  const bool deterministic = write_ingest_json(flags.threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return deterministic ? 0 : 1;
}
