// google-benchmark microbenchmarks of the analysis pipeline itself: how fast
// the library chews through CDRs. (The per-figure binaries measure fidelity;
// this one measures throughput.) Besides the google-benchmark table, the
// binary emits machine-readable BENCH_pipeline.json (end-to-end batch pass:
// records/sec, wall seconds, peak RSS), BENCH_batch.json (full run_study
// swept over executor widths 1,2,4,..,--threads with speedup_vs_1t) and
// BENCH_ingest.json (front-of-pipeline generate/ingest/finalize/analyze
// phase sweep at widths 1 and --threads, with a bitwise-determinism check
// across widths) for CI regression diffing. Schemas: bench/BENCH_SCHEMA.md.
//
// Flags / env: --threads N (sweep ceiling, default 8, 0 = hardware
// concurrency — resolved before it reaches any JSON; stripped before
// google-benchmark sees the argv), CCMS_BENCH_OUT (BENCH_pipeline.json
// path), CCMS_BENCH_BATCH_OUT (BENCH_batch.json path),
// CCMS_BENCH_INGEST_OUT (BENCH_ingest.json path), CCMS_CARS / CCMS_DAYS
// (ingest-sweep fixture size).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "core/cell_sessions.h"
#include "core/days_histogram.h"

#include "cdr/clean.h"
#include "cdr/io.h"
#include "cdr/session.h"
#include "exec/thread_pool.h"
#include "core/busy_time.h"
#include "core/concurrency.h"
#include "core/connected_time.h"
#include "core/presence.h"
#include "core/study.h"
#include "sim/simulator.h"
#include "stats/kmeans.h"
#include "stats/p2_quantile.h"
#include "stats/quantile.h"

namespace {

using namespace ccms;

const sim::Study& shared_study() {
  static const sim::Study study = [] {
    sim::SimConfig config;
    config.fleet.size = 400;
    config.study_days = 28;
    config.topology.grid_width = 16;
    config.topology.grid_height = 16;
    return sim::simulate(config);
  }();
  return study;
}

void BM_Simulate(benchmark::State& state) {
  sim::SimConfig config;
  config.fleet.size = static_cast<int>(state.range(0));
  config.study_days = 14;
  config.topology.grid_width = 16;
  config.topology.grid_height = 16;
  std::size_t records = 0;
  for (auto _ : state) {
    const sim::Study study = sim::simulate(config);
    records = study.raw.size();
    benchmark::DoNotOptimize(records);
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulate)->Arg(100)->Arg(400);

void BM_Clean(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    cdr::CleanReport report;
    const cdr::Dataset cleaned = cdr::clean(study.raw, {}, report);
    benchmark::DoNotOptimize(cleaned.size());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Clean);

void BM_SessionAggregation(benchmark::State& state) {
  const sim::Study& study = shared_study();
  const auto gap = static_cast<time::Seconds>(state.range(0));
  for (auto _ : state) {
    std::size_t sessions = 0;
    study.raw.for_each_car(
        [&](CarId, std::span<const cdr::Connection> conns) {
          sessions += cdr::aggregate_sessions(conns, gap).size();
        });
    benchmark::DoNotOptimize(sessions);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SessionAggregation)->Arg(30)->Arg(600);

void BM_UnionConnectedTime(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto ct = core::analyze_connected_time(study.raw);
    benchmark::DoNotOptimize(ct.mean_full);
  }
}
BENCHMARK(BM_UnionConnectedTime);

void BM_Presence(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto presence = core::analyze_presence(study.raw);
    benchmark::DoNotOptimize(presence.cars_overall.mean);
  }
}
BENCHMARK(BM_Presence);

void BM_BusyTime(benchmark::State& state) {
  const sim::Study& study = shared_study();
  const auto load = core::CellLoad::from_background(study.background);
  for (auto _ : state) {
    const auto busy = core::analyze_busy_time(study.raw, load);
    benchmark::DoNotOptimize(busy.fraction_over_half);
  }
}
BENCHMARK(BM_BusyTime);

void BM_ConcurrencyGrid(benchmark::State& state) {
  const sim::Study& study = shared_study();
  for (auto _ : state) {
    const auto grid = core::ConcurrencyGrid::build(study.raw);
    benchmark::DoNotOptimize(grid.cells().size());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(study.raw.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConcurrencyGrid);

void BM_KMeans96d(benchmark::State& state) {
  // Fig 11's workload shape: N 96-dim vectors, k = 2.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v(96);
    const double level = i % 5 == 0 ? 8.0 : 1.5;
    for (auto& x : v) x = level + rng.normal(0, 0.4);
    points.push_back(std::move(v));
  }
  for (auto _ : state) {
    util::Rng krng(11);
    const auto result = stats::kmeans(points, {.k = 2}, krng);
    benchmark::DoNotOptimize(result.inertia);
  }
}
BENCHMARK(BM_KMeans96d)->Arg(100)->Arg(1000);

void BM_QuantileExact(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.lognormal_median(105.0, 1.2);
  for (auto _ : state) {
    auto copy = sample;
    const stats::EmpiricalDistribution dist(std::move(copy));
    benchmark::DoNotOptimize(dist.quantile(0.73));
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(sample.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QuantileExact)->Arg(100000)->Arg(1000000);

void BM_QuantileP2(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& x : sample) x = rng.lognormal_median(105.0, 1.2);
  for (auto _ : state) {
    stats::P2Quantile est(0.73);
    for (const double x : sample) est.add(x);
    benchmark::DoNotOptimize(est.value());
  }
  state.counters["values/s"] = benchmark::Counter(
      static_cast<double>(sample.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QuantileP2)->Arg(100000)->Arg(1000000);

// One timed end-to-end batch pass (clean + the Fig 2/3/6/9 analyzers) over
// the shared study, written to BENCH_pipeline.json. The google-benchmark
// table remains the per-stage source of truth; this artifact is the single
// number CI tracks across commits.
void write_pipeline_json() {
  const sim::Study& study = shared_study();
  const bench::Stopwatch timer;
  cdr::CleanReport clean_report;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, clean_report);
  const auto presence = core::analyze_presence(cleaned);
  const auto connected = core::analyze_connected_time(cleaned, 600);
  const auto days = core::analyze_days_on_network(cleaned);
  const auto sessions = core::analyze_cell_sessions(cleaned, 600);
  const double wall_s = timer.seconds();
  benchmark::DoNotOptimize(presence.cars_fraction.size());
  benchmark::DoNotOptimize(connected.full.size());
  benchmark::DoNotOptimize(days.days_per_car.size());
  benchmark::DoNotOptimize(sessions.median);

  const auto records = static_cast<std::uint64_t>(study.raw.size());
  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_pipeline")
          .add("records", records)
          .add("cars", study.config.fleet.size)
          .add("study_days", study.config.study_days)
          .add("wall_s", wall_s)
          .add("records_per_s",
               wall_s > 0 ? static_cast<double>(records) / wall_s : 0)
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_pipeline.json", json);
}

// Full run_study (every §4 analysis) swept over executor widths
// 1, 2, 4, .., max_threads, written to BENCH_batch.json. speedup_vs_1t is
// the scaling curve CI tracks; the report is bitwise identical across rows
// by construction, so only time varies.
void write_batch_json(int max_threads) {
  const sim::Study& study = shared_study();
  const auto load = core::CellLoad::from_background(study.background);
  const auto records = static_cast<std::uint64_t>(study.raw.size());

  std::vector<int> widths;
  for (int t = 1; t < max_threads; t *= 2) widths.push_back(t);
  widths.push_back(max_threads);

  bench::JsonArray rows;
  double wall_1t = 0;
  std::printf("run_study sweep: threads      wall_s    records/s   speedup\n");
  for (const int threads : widths) {
    core::StudyOptions options;
    options.threads = threads;
    const bench::Stopwatch timer;
    const core::StudyReport report =
        core::run_study(study.raw, study.topology.cells(), load, options);
    const double wall_s = timer.seconds();
    benchmark::DoNotOptimize(report.carriers.car_count);
    if (threads == 1) wall_1t = wall_s;
    const double speedup = wall_s > 0 ? wall_1t / wall_s : 0;
    std::printf("                %7d %11.3f %12.0f %8.2fx\n", threads, wall_s,
                wall_s > 0 ? static_cast<double>(records) / wall_s : 0,
                speedup);
    rows.push(bench::JsonObject()
                  .add("threads", threads)
                  .add("wall_s", wall_s)
                  .add("records_per_s",
                       wall_s > 0 ? static_cast<double>(records) / wall_s : 0)
                  .add("speedup_vs_1t", speedup)
                  .dump());
  }

  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_batch")
          .add("records", records)
          .add("cars", study.config.fleet.size)
          .add("study_days", study.config.study_days)
          .add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()))
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("thread_runs", rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_BATCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_batch.json", json);
}

// Front-of-pipeline phase sweep — generate / ingest / finalize / analyze —
// at executor widths 1 and max_threads, written to BENCH_ingest.json. Each
// phase row reports wall seconds and records/s; the top-level
// `deterministic` flag asserts the PR invariant that every phase's output at
// every width is bitwise identical to the 1-thread run. Fixture size comes
// from CCMS_CARS / CCMS_DAYS (defaults 2000 cars, 28 days). Returns the
// determinism verdict so main() can fail the run on a mismatch.
bool write_ingest_json(int max_threads) {
  const char* cars_env = std::getenv("CCMS_CARS");
  const char* days_env = std::getenv("CCMS_DAYS");
  const int cars = cars_env != nullptr ? std::atoi(cars_env) : 2000;
  const int days = days_env != nullptr ? std::atoi(days_env) : 28;

  std::vector<int> widths = {1};
  if (max_threads > 1) widths.push_back(max_threads);

  bench::JsonArray rows;
  bool deterministic = true;
  std::string golden_raw;    // width-1 generated trace, serialized
  std::string golden_final;  // width-1 re-finalized shuffled dataset
  std::uint64_t records = 0;

  std::printf(
      "front-of-pipeline sweep: threads      phase      wall_s    records/s\n");
  for (const int w : widths) {
    sim::SimConfig config;
    config.fleet.size = cars;
    config.study_days = days;
    config.topology.grid_width = 24;
    config.topology.grid_height = 24;
    config.threads = w;

    const bench::Stopwatch gen_timer;
    const sim::Study study = sim::simulate(config);
    const double gen_s = gen_timer.seconds();
    records = static_cast<std::uint64_t>(study.raw.size());

    const std::string bytes = cdr::write_binary_buffer(study.raw);

    cdr::IngestOptions options;
    options.threads = w;
    // Re-loading our own trace: simulated traces can contain legitimate
    // exact duplicates, so the duplicate screen stays off for a bitwise
    // round trip.
    options.check_duplicates = false;
    cdr::IngestReport report;
    const bench::Stopwatch ingest_timer;
    const cdr::Dataset ingested =
        cdr::read_binary_buffer(bytes, options, report, "bench");
    const double ingest_s = ingest_timer.seconds();

    // Deterministically shuffled copy so finalize() has real sorting work
    // (the simulator's output is already nearly in (car, start) order).
    std::vector<cdr::Connection> shuffled(study.raw.all().begin(),
                                          study.raw.all().end());
    util::Rng shuffle_rng(42);
    shuffle_rng.shuffle(shuffled);
    cdr::Dataset unsorted;
    unsorted.set_fleet_size(study.raw.fleet_size());
    unsorted.set_study_days(study.raw.study_days());
    unsorted.reserve(shuffled.size());
    unsorted.add(shuffled);
    exec::ThreadPool pool(w);
    const bench::Stopwatch fin_timer;
    unsorted.finalize(pool);
    const double fin_s = fin_timer.seconds();

    const auto load = core::CellLoad::from_background(study.background);
    core::StudyOptions study_options;
    study_options.threads = w;
    const bench::Stopwatch an_timer;
    const core::StudyReport sr =
        core::run_study(study.raw, study.topology.cells(), load, study_options);
    const double an_s = an_timer.seconds();
    benchmark::DoNotOptimize(sr.carriers.car_count);

    // Bitwise determinism: the generated trace, the ingested round-trip and
    // the re-finalized dataset must serialize to the width-1 bytes exactly.
    const std::string final_bytes = cdr::write_binary_buffer(unsorted);
    const std::string ingested_bytes = cdr::write_binary_buffer(ingested);
    if (w == widths.front()) {
      golden_raw = bytes;
      golden_final = final_bytes;
    } else if (bytes != golden_raw || final_bytes != golden_final) {
      deterministic = false;
    }
    if (ingested_bytes != bytes || final_bytes != bytes) {
      deterministic = false;
    }

    const auto row = [&](const char* phase, double wall_s, std::uint64_t n) {
      std::printf("                         %7d %10s %11.3f %12.0f\n", w,
                  phase, wall_s,
                  wall_s > 0 ? static_cast<double>(n) / wall_s : 0);
      rows.push(bench::JsonObject()
                    .add("threads", w)
                    .add("phase", phase)
                    .add("wall_s", wall_s)
                    .add("records_per_s",
                         wall_s > 0 ? static_cast<double>(n) / wall_s : 0)
                    .dump());
    };
    row("generate", gen_s, records);
    row("ingest", ingest_s,
        static_cast<std::uint64_t>(report.records_accepted));
    row("finalize", fin_s, records);
    row("analyze", an_s, records);
  }

  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_ingest")
          .add("records", records)
          .add("cars", cars)
          .add("study_days", days)
          .add("threads_max", max_threads)
          .add("hardware_concurrency",
               static_cast<int>(std::thread::hardware_concurrency()))
          .add("deterministic", deterministic)
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("phase_runs", rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_INGEST_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_ingest.json", json);
  if (!deterministic) {
    std::cerr << "[bench] FRONT-OF-PIPELINE OUTPUT DIVERGES ACROSS THREAD "
                 "WIDTHS\n";
  }
  return deterministic;
}

// Consumes a leading `--threads N` / `--threads=N` before google-benchmark
// parses (and would reject) it. Returns the *resolved* sweep ceiling:
// `--threads 0` means hardware concurrency and is resolved here, so every
// BENCH_*.json records the real width it ran at, never a literal 0.
int strip_threads_flag(int& argc, char** argv, int fallback) {
  int threads = fallback;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const char* arg = argv[r];
    if (std::strcmp(arg, "--threads") == 0 && r + 1 < argc) {
      threads = std::atoi(argv[++r]);
      continue;
    }
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  if (threads < 0) threads = fallback;
  return exec::ThreadPool::resolve_threads(threads);
}

}  // namespace

int main(int argc, char** argv) {
  const int max_threads = strip_threads_flag(argc, argv, 8);
  write_pipeline_json();
  write_batch_json(max_threads);
  const bool deterministic = write_ingest_json(max_threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return deterministic ? 0 : 1;
}
