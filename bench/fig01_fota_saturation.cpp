// Figure 1: "Large downloads start at 20:45 UTC in two cells and last for
// 4 hours, consuming nearly all available resources."
//
// Reproduces the saturation experiment on two moderately-loaded cells:
// prints the per-bin test-day and average-day utilisation series and an
// ASCII rendering of the four curves.
#include <cstdio>

#include "bench_common.h"
#include "sim/fota.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 1: PRB saturation by a single greedy download",
      "test curves pin at ~100% from 20:45 for 4 h; averages stay diurnal");

  // Only topology + load are needed; keep the fleet tiny.
  sim::SimConfig config = bench::bench_config();
  config.fleet.size = 1;
  const sim::Study study = sim::simulate(config);

  const auto cells =
      sim::pick_test_cells(study.background, study.topology.cells(), 2);
  if (cells.size() < 2) {
    std::printf("not enough moderately-loaded cells in this topology\n");
    return 1;
  }

  std::vector<util::Series> series;
  static constexpr char kGlyphs[] = {'1', '2', 'a', 'b'};
  std::printf("bin,time");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(",cell%zu_test,cell%zu_average", i + 1, i + 1);
  }
  std::printf("\n");

  std::vector<sim::SaturationResult> results;
  for (const CellId cell : cells) {
    results.push_back(
        sim::saturation_experiment(study.background, study.topology.cells(),
                                   cell));
  }
  for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
    std::printf("%d,%s", bin,
                time::format_hhmm(bin * time::kSecondsPerBin15).c_str());
    for (const auto& r : results) {
      std::printf(",%.3f,%.3f", r.test_day[static_cast<std::size_t>(bin)],
                  r.average_day[static_cast<std::size_t>(bin)]);
    }
    std::printf("\n");
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    util::Series test;
    test.glyph = kGlyphs[i];
    test.name = "cell" + std::to_string(i + 1) + " test";
    util::Series avg;
    avg.glyph = kGlyphs[i + 2];
    avg.name = "cell" + std::to_string(i + 1) + " average";
    for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
      test.points.push_back(
          {static_cast<double>(bin),
           results[i].test_day[static_cast<std::size_t>(bin)]});
      avg.points.push_back(
          {static_cast<double>(bin),
           results[i].average_day[static_cast<std::size_t>(bin)]});
    }
    series.push_back(std::move(test));
    series.push_back(std::move(avg));
  }

  util::PlotOptions options;
  options.y_min = 0;
  options.y_max = 1.05;
  options.x_label = "15-min bin of day (test starts at bin 83 = 20:45)";
  options.y_label = "PRB utilization";
  std::printf("\n%s", util::render_lines(series, options).c_str());

  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf(
        "cell %zu: peak utilization during test %.1f%% (paper: ~100%%), "
        "%.0f MB delivered in 4 h\n",
        i + 1, results[i].peak_utilization * 100.0, results[i].delivered_mb);
  }
  return 0;
}
