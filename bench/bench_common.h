// Shared setup for the per-figure/table bench binaries.
//
// Every binary simulates the same synthetic study (paper-default config,
// scaled by env vars) and prints its figure/table next to the paper's
// reported values. Env overrides:
//   CCMS_CARS  fleet size         (default 2500)
//   CCMS_DAYS  study length       (default 90)
//   CCMS_SEED  master seed        (default 20170901)
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "cdr/clean.h"
#include "core/load_view.h"
#include "sim/simulator.h"

namespace ccms::bench {

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

/// The simulated study plus its cleaned dataset and load view.
struct BenchStudy {
  sim::Study study;
  core::CellLoad load;
  cdr::CleanReport clean_report;
  cdr::Dataset cleaned;
};

inline sim::SimConfig bench_config() {
  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = env_int("CCMS_CARS", 2500);
  config.study_days = env_int("CCMS_DAYS", 90);
  config.seed = static_cast<std::uint64_t>(env_int("CCMS_SEED", 20170901));
  return config;
}

inline BenchStudy make_bench_study() {
  const sim::SimConfig config = bench_config();
  std::cerr << "[bench] simulating " << config.fleet.size << " cars x "
            << config.study_days << " days (seed " << config.seed
            << "; override with CCMS_CARS/CCMS_DAYS/CCMS_SEED)...\n";
  sim::Study study = sim::simulate(config);
  core::CellLoad load = core::CellLoad::from_background(study.background);
  cdr::CleanReport report;
  cdr::Dataset cleaned = cdr::clean(study.raw, {}, report);
  std::cerr << "[bench] " << study.raw.size() << " raw records, "
            << report.total_removed() << " removed by cleaning\n";
  return BenchStudy{std::move(study), std::move(load), report,
                    std::move(cleaned)};
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::cout << "==================================================\n"
            << experiment << "\n"
            << "paper: " << paper_claim << "\n"
            << "==================================================\n";
}

}  // namespace ccms::bench
