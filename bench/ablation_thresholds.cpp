// Ablation bench: sensitivity of the paper's headline results to its three
// methodological constants — the 30 s session-concatenation gap (S3), the
// 600 s truncation cap (S3) and the 80% busy-PRB threshold (S4.3). The
// paper fixes these by judgement; this bench shows how the conclusions move
// as they vary.
#include <cstdio>

#include "bench_common.h"
#include "core/busy_time.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "core/handover.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Ablation: sensitivity to the 30 s gap / 600 s cap / 80% busy "
      "threshold",
      "(methodology constants fixed by judgement in S3/S4.3)");

  const bench::BenchStudy bench = bench::make_bench_study();

  std::printf("\n-- truncation cap (S3; paper uses 600 s) --\n");
  std::printf("cap_s,mean_connected_pct,mean_session_s\n");
  for (const std::int32_t cap : {150, 300, 600, 1200, 2400}) {
    const auto ct = core::analyze_connected_time(bench.cleaned, cap);
    const auto cs = core::analyze_cell_sessions(bench.cleaned, cap);
    std::printf("%d,%.2f,%.0f\n", cap, ct.mean_truncated * 100,
                cs.mean_truncated);
  }

  std::printf("\n-- session gap for handover accounting (S4.5; paper uses "
              "600 s) --\n");
  std::printf("gap_s,sessions,median_handovers,p70,p90\n");
  for (const time::Seconds gap : {30, 120, 300, 600, 1200}) {
    const auto h =
        core::analyze_handovers(bench.cleaned, bench.study.topology.cells(),
                                gap);
    std::printf("%lld,%llu,%.0f,%.0f,%.0f\n", static_cast<long long>(gap),
                static_cast<unsigned long long>(h.session_count), h.median,
                h.p70, h.p90);
  }

  std::printf("\n-- busy-PRB threshold (S4.3; paper uses 80%%) --\n");
  std::printf("threshold,cars_over_half_busy_pct,median_busy_share_pct\n");
  for (const double threshold : {0.6, 0.7, 0.8, 0.9}) {
    const auto busy =
        core::analyze_busy_time(bench.cleaned, bench.load, threshold);
    std::printf("%.0f%%,%.2f,%.1f\n", threshold * 100,
                busy.fraction_over_half * 100, busy.shares.median() * 100);
  }
  return 0;
}
