// Figure 11: "Concurrent cars on all busy radios" — k-means (k=2) over the
// 96-bin daily concurrency vectors of all cells with weekly average PRB >=
// 70%. The paper finds a large cluster of low-concurrency busy radios and a
// ~4x smaller cluster with ~5x the concurrent cars.
#include <cstdio>

#include "bench_common.h"
#include "core/clustering.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 11: k-means clusters of busy radios' daily concurrency",
      "2 clusters, same diurnal shape; cluster 2 ~5x the cars, cluster 1 ~4x "
      "the cells");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::ConcurrencyGrid grid = core::ConcurrencyGrid::build(bench.cleaned);
  const core::ConcurrencyClusters result =
      core::cluster_busy_cells(grid, bench.load);

  core::print_clusters(std::cout, result);

  std::printf("\nbin_of_day");
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    std::printf(",cluster%zu_cars", c + 1);
  }
  std::printf("\n");
  for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
    std::printf("%d", bin);
    for (const auto& cluster : result.clusters) {
      std::printf(",%.3f", cluster.centroid[static_cast<std::size_t>(bin)]);
    }
    std::printf("\n");
  }

  std::vector<util::Series> series;
  const char glyphs[] = {'1', '2', '3', '4'};
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    util::Series s;
    s.glyph = glyphs[c % 4];
    s.name = "cluster " + std::to_string(c + 1) + " centroid";
    for (int bin = 0; bin < time::kBins15PerDay; ++bin) {
      s.points.push_back(
          {static_cast<double>(bin),
           result.clusters[c].centroid[static_cast<std::size_t>(bin)]});
    }
    series.push_back(std::move(s));
  }
  util::PlotOptions options;
  options.x_label = "15-min bin of day";
  options.y_label = "average concurrent cars";
  std::printf("\n%s", util::render_lines(series, options).c_str());
  return 0;
}
