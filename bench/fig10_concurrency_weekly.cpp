// Figure 10: "Concurrent cars on two sample radios" — one week of concurrent
// cars per 15-minute bin (impulses) against the cell's average U_PRB (line)
// for two contrasting cells: a moderately-loaded cell with many cars, and a
// busy cell with few cars.
#include <cstdio>

#include "bench_common.h"
#include "sim/measured_load.h"
#include "core/concurrency.h"
#include "util/ascii_plot.h"

namespace {

using namespace ccms;

void print_cell_week(const core::CellConcurrency& profile,
                     const core::CellLoad& load) {
  std::printf("\ncell %u: mean %.2f concurrent cars, peak %.1f, weekly mean "
              "PRB %.0f%%\n",
              profile.cell.value, profile.mean, profile.peak,
              load.weekly_mean(profile.cell) * 100);
  std::printf("bin_of_week,cars,prb\n");
  for (int bin = 0; bin < time::kBins15PerWeek; bin += 4) {  // hourly rows
    std::printf("%d,%.2f,%.2f\n", bin,
                profile.weekly[static_cast<std::size_t>(bin)],
                load.at(profile.cell, bin));
  }

  std::vector<util::Series> series(2);
  series[0].glyph = '|';
  series[0].name = "# cars";
  series[1].glyph = '.';
  series[1].name = "PRB (x peak cars)";
  double peak = profile.peak > 0 ? profile.peak : 1.0;
  for (int bin = 0; bin < time::kBins15PerWeek; ++bin) {
    series[0].points.push_back(
        {static_cast<double>(bin),
         profile.weekly[static_cast<std::size_t>(bin)]});
    series[1].points.push_back(
        {static_cast<double>(bin), load.at(profile.cell, bin) * peak});
  }
  util::PlotOptions options;
  options.x_label = "15-min bin of week (Mon..Sun)";
  std::printf("%s", util::render_lines(series, options).c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 10: a week of concurrent cars vs PRB on two sample radios",
      "top: moderately loaded cell with 10-25 cars at busy hours; bottom: "
      "busy cell with few cars; concurrency follows the diurnal PRB shape");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::ConcurrencyGrid grid = core::ConcurrencyGrid::build(bench.cleaned);
  // Fig 10 plots what the network telemetry measures: background plus the
  // cars' own contribution.
  const core::CellLoad measured =
      sim::measured_load(bench.study.background, bench.cleaned);

  // Sample 1: the cell with the most concurrent cars.
  const core::CellConcurrency* crowded = nullptr;
  for (const auto& profile : grid.cells()) {
    if (crowded == nullptr || profile.peak > crowded->peak) {
      crowded = &profile;
    }
  }
  // Sample 2: the busiest (by load) cell that still sees a few cars.
  const core::CellConcurrency* busy = nullptr;
  double best_load = 0;
  for (const auto& profile : grid.cells()) {
    const double l = bench.load.weekly_mean(profile.cell);
    if (l > best_load && profile.peak >= 1 &&
        (crowded == nullptr || profile.cell != crowded->cell)) {
      best_load = l;
      busy = &profile;
    }
  }

  if (crowded != nullptr) print_cell_week(*crowded, measured);
  if (busy != nullptr) print_cell_week(*busy, measured);
  return 0;
}
