// Table 1: "Usage of cells by cars and occurrence of cars per day" —
// mean and standard deviation of the daily percentages per weekday.
#include "bench_common.h"
#include "core/presence.h"
#include "core/report.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Table 1: usage of cells by cars and occurrence of cars per day",
      "weekdays ~79% cars / ~68% cells; Sat/Sun lower; Fri+Sat most variable");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::DailyPresence presence = core::analyze_presence(bench.cleaned);
  core::print_table1(std::cout, presence);
  return 0;
}
