// Machine-readable bench artifacts: BENCH_*.json emitters.
//
// The perf benches print human-readable tables on stdout *and* drop a small
// JSON file (records/sec, wall seconds, peak RSS, environment) so CI and
// regression tooling can diff runs without scraping text. The writer is a
// deliberately tiny append-only serializer — no dependency, no reflection —
// sufficient for flat objects with nested arrays of flat objects.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ccms::bench {

/// Peak resident set size of this process, bytes (Linux ru_maxrss is KiB).
inline std::int64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Append-only JSON object/array builder. Keys are emitted in call order;
/// values are numbers, strings, bools or raw (pre-serialized) JSON.
class JsonObject {
 public:
  JsonObject& add(std::string_view key, double value) {
    std::ostringstream os;
    os.precision(15);  // round-trippable for any value we emit
    os << value;
    return raw(key, os.str());
  }
  JsonObject& add(std::string_view key, std::int64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, int value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& add(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  // Without this overload a string literal would convert to bool.
  JsonObject& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObject& add(std::string_view key, std::string_view value) {
    std::string quoted = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }
  /// Nested object / array: pass pre-serialized JSON.
  JsonObject& raw(std::string_view key, std::string_view json) {
    if (!body_.empty()) body_ += ", ";
    body_ += '"';
    body_ += key;
    body_ += "\": ";
    body_ += json;
    return *this;
  }

  [[nodiscard]] std::string dump() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Serializes a sequence of pre-serialized JSON values as an array.
class JsonArray {
 public:
  JsonArray& push(std::string_view json) {
    if (!body_.empty()) body_ += ", ";
    body_ += json;
    return *this;
  }
  [[nodiscard]] std::string dump() const { return "[" + body_ + "]"; }

 private:
  std::string body_;
};

/// Writes `json` to `path` and echoes the path on stderr.
inline void write_bench_json(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::trunc);
  out << json << "\n";
  out.close();
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace ccms::bench
