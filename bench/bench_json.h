// Machine-readable bench artifacts: BENCH_*.json emitters.
//
// The perf benches print human-readable tables on stdout *and* drop a small
// JSON file (records/sec, wall seconds, peak RSS, environment) so CI and
// regression tooling can diff runs without scraping text. The serializer
// lives in util/json.h (shared with the invariants harness); this header
// adds the bench-only pieces: the RSS probe and the wall-clock stopwatch.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "util/json.h"

namespace ccms::bench {

using util::JsonArray;
using util::JsonObject;

/// Peak resident set size of this process, bytes (Linux ru_maxrss is KiB).
inline std::int64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes `json` to `path` and echoes the path on stderr.
inline void write_bench_json(const std::string& path, const std::string& json) {
  util::write_json_file(path, json);
  std::cerr << "[bench] wrote " << path << "\n";
}

}  // namespace ccms::bench
