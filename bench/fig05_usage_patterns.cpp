// Figure 5: "Usage patterns from 3 sample cars" — 24x7 connection-frequency
// matrices for three behaviourally distinct cars: a network-peak commuter, a
// heavy all-week user, and a strict early commuter with weekend structure.
#include <cstdio>

#include "bench_common.h"
#include "core/usage_matrix.h"
#include "fleet/archetype.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 5: 24x7 usage matrices of 3 sample cars",
      "left: weekday busy-hour car; middle: heavy user; right: strict "
      "commuter with predictable weekend usage");

  const bench::BenchStudy bench = bench::make_bench_study();

  // Pick exemplars by archetype, preferring cars with many records.
  auto best_of = [&](fleet::Archetype archetype) -> const fleet::CarProfile* {
    const fleet::CarProfile* best = nullptr;
    std::size_t best_records = 0;
    for (const fleet::CarProfile& car : bench.study.fleet) {
      if (car.archetype != archetype) continue;
      const auto n = bench.cleaned.of_car(car.id).size();
      if (n > best_records) {
        best_records = n;
        best = &car;
      }
    }
    return best;
  };

  const struct {
    const char* label;
    fleet::Archetype archetype;
  } picks[3] = {
      {"flex commuter (busy-hour usage)", fleet::Archetype::kFlexCommuter},
      {"heavy user (all week)", fleet::Archetype::kHeavyUser},
      {"regular commuter (strict pattern)",
       fleet::Archetype::kRegularCommuter},
  };

  for (const auto& pick : picks) {
    const fleet::CarProfile* car = best_of(pick.archetype);
    if (car == nullptr) continue;
    const auto records = bench.cleaned.of_car(car->id);
    const core::Matrix24x7 matrix =
        core::usage_matrix(records, car->tz_offset_hours);
    std::printf("\ncar %u - %s (%zu records)\n", car->id.value, pick.label,
                records.size());
    std::vector<double> values(matrix.values.begin(), matrix.values.end());
    std::printf("%s", util::render_matrix24x7(values).c_str());
    std::printf(
        "regularity score %.2f | activity share: commute-peak %.0f%%, "
        "network-peak %.0f%%, weekend %.0f%%\n",
        core::regularity_score(records, bench.cleaned.study_days(),
                               car->tz_offset_hours),
        matrix.fraction_in(core::commute_peak_mask()) * 100,
        matrix.fraction_in(core::network_peak_mask()) * 100,
        matrix.fraction_in(core::weekend_mask()) * 100);
  }

  return 0;
}
