// harness_replay: deterministic re-run of a flight-recorder bundle.
//
//   harness_replay BUNDLE_DIR
//
// Loads the bundle harness_run wrote on a violation, re-runs the recorded
// (scenario, seed) from scratch and verifies the same invariant fails at
// the same stage with an identical detail string — and that every recorded
// checkpoint image re-derives byte-identically. Exit 0 iff the failure is
// reproduced exactly; 1 when the run now passes or diverges (the code
// changed, not the inputs); 2 on a bad bundle.
#include <cstdio>
#include <string>

#include "harness/replay.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: harness_replay BUNDLE_DIR\n");
    return 2;
  }
  const std::string dir = argv[1];

  std::string error;
  const auto bundle = ccms::harness::load_bundle(dir, &error);
  if (!bundle.has_value()) {
    std::fprintf(stderr, "cannot load bundle: %s\n", error.c_str());
    return 2;
  }
  std::printf("replaying %s seed=%llu (recorded violation: %s @ %s)\n",
              bundle->scenario.name.c_str(),
              static_cast<unsigned long long>(bundle->seed),
              bundle->violation.invariant.c_str(),
              bundle->violation.stage.c_str());

  const ccms::harness::ReplayOutcome outcome =
      ccms::harness::replay_bundle(*bundle);

  const ccms::harness::CheckResult* failure = outcome.result.first_failure();
  if (failure == nullptr) {
    std::printf("replay PASSED all checks — violation NOT reproduced\n");
    return 1;
  }
  std::printf("replay violation: %s @ %s: %s\n", failure->invariant.c_str(),
              failure->stage.c_str(), failure->detail.c_str());
  std::printf("  signature identical:  %s\n",
              outcome.violation_reproduced ? "yes" : "NO");
  std::printf("  checkpoints identical: %s (%zu image(s))\n",
              outcome.checkpoints_identical ? "yes" : "NO",
              bundle->checkpoint_images.size());
  std::printf("-> %s\n", outcome.reproduced() ? "REPRODUCED bit for bit"
                                              : "DIVERGED");
  return outcome.reproduced() ? 0 : 1;
}
