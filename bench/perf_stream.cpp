// Throughput bench of ccms::stream's sharded engine: one simulated feed
// replayed through 1/2/4/8 shards, reporting records/sec, wall time, peak
// RSS and the scaling curve, with a batch-parity cross-check on every run.
//
// Output: a human table on stdout and machine-readable BENCH_stream.json
// (see bench_json.h) in the working directory. Shard scaling is reported
// against the machine's actual core count — on a single-core host the
// multi-shard rows measure queueing overhead, not speedup, and the JSON
// records hardware_concurrency so downstream tooling can judge the curve.
//
// Env overrides: CCMS_CARS (default 2500), CCMS_DAYS (default 28),
// CCMS_SEED, CCMS_BENCH_OUT (default BENCH_stream.json).
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "cdr/clean.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "core/days_histogram.h"
#include "core/presence.h"
#include "sim/simulator.h"
#include "stream/engine.h"
#include "stream/feed.h"
#include "stream/report.h"

namespace {

using namespace ccms;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct ShardRun {
  int shards = 0;
  double wall_s = 0;
  double records_per_s = 0;
  double speedup = 0;
  bool parity_ok = false;
  double p2_rel_error = 0;
};

}  // namespace

int main() {
  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = env_int("CCMS_CARS", 2500);
  config.study_days = env_int("CCMS_DAYS", 28);
  config.seed = static_cast<std::uint64_t>(env_int("CCMS_SEED", 20170901));

  std::cerr << "[bench] simulating " << config.fleet.size << " cars x "
            << config.study_days << " days (seed " << config.seed << ")...\n";
  const sim::Study study = sim::simulate(config);
  const std::uint64_t records = study.raw.size();

  // Batch-side reference figures for the parity cross-check (the engine's
  // claim is "same numbers as run_study in one streaming pass").
  core::StudyReport batch;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, batch.clean);
  batch.presence = core::analyze_presence(cleaned);
  batch.connected_time = core::analyze_connected_time(cleaned, 600);
  batch.days = core::analyze_days_on_network(cleaned);
  batch.cell_sessions = core::analyze_cell_sessions(cleaned, 600);

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "perf_stream: " << records << " records, "
            << config.fleet.size << " cars x " << config.study_days
            << " days, " << cores << " hardware threads\n";
  std::cout << "shards      wall_s    records/s   speedup   parity\n";

  std::vector<ShardRun> runs;
  for (const int shards : {1, 2, 4, 8}) {
    stream::ShardedEngine engine(stream::config_for(study.raw, shards));
    const bench::Stopwatch timer;
    stream::replay(study.raw, engine);
    const stream::StreamReport report = engine.snapshot();
    ShardRun run;
    run.shards = shards;
    run.wall_s = timer.seconds();
    run.records_per_s =
        run.wall_s > 0 ? static_cast<double>(records) / run.wall_s : 0;
    run.speedup = runs.empty() ? 1.0 : runs.front().wall_s / run.wall_s;
    const stream::ParityReport parity = stream::parity_against(report, batch);
    run.parity_ok = parity.pass();
    run.p2_rel_error = parity.p2_median_rel_error;
    runs.push_back(run);
    std::printf("%4d   %11.3f   %10.0f   %7.2fx   %s\n", run.shards,
                run.wall_s, run.records_per_s, run.speedup,
                run.parity_ok ? "ok" : "FAIL");
  }

  bench::JsonArray shard_rows;
  for (const ShardRun& run : runs) {
    // `threads` / `speedup_vs_1t` mirror BENCH_batch.json's row schema so
    // one consumer reads both curves; the historical keys stay alongside.
    shard_rows.push(bench::JsonObject()
                        .add("shards", run.shards)
                        .add("threads", run.shards)
                        .add("wall_s", run.wall_s)
                        .add("records_per_s", run.records_per_s)
                        .add("speedup_vs_1_shard", run.speedup)
                        .add("speedup_vs_1t", run.speedup)
                        .add("parity_ok", run.parity_ok)
                        .add("p2_median_rel_error", run.p2_rel_error)
                        .dump());
  }
  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_stream")
          .add("records", records)
          .add("cars", config.fleet.size)
          .add("study_days", config.study_days)
          .add("seed", static_cast<std::int64_t>(config.seed))
          .add("hardware_concurrency", static_cast<int>(cores))
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("shard_runs", shard_rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_stream.json", json);

  for (const ShardRun& run : runs) {
    if (!run.parity_ok) {
      std::cerr << "[bench] parity FAILED at " << run.shards << " shards\n";
      return 1;
    }
  }
  return 0;
}
