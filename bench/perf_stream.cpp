// Throughput bench of ccms::stream's sharded engine: one simulated feed
// replayed through 1/2/4/8 shards, reporting records/sec, wall time, peak
// RSS and the scaling curve, with a batch-parity cross-check on every run.
//
// Output: a human table on stdout and machine-readable BENCH_stream.json
// (see bench_json.h) in the working directory. Shard scaling is reported
// against the machine's actual core count — on a single-core host the
// multi-shard rows measure queueing overhead, not speedup, and the JSON
// records hardware_concurrency so downstream tooling can judge the curve.
//
// A second phase measures crash recovery: the same feed is replayed through
// a faults::FlakyFeed (seeded disconnects + reorder bursts) with periodic
// checkpoints, killed mid-stream, restored from the last checkpoint and
// replayed from that checkpoint's feed position. The phase times checkpoint()
// and restore(), records the encoded image size and the replay gap, verifies
// the recovered report is bitwise identical to an uninterrupted run, and
// writes BENCH_stream_recovery.json.
//
// A third phase measures *distributed* recovery: the feed replayed through
// dist::DistEngine (one supervised worker process per shard), with one
// worker crashed mid-run and restarted from its rolling checkpoint. Each
// worker count contributes a row (records/s, restarts, recovery-gap
// records) to the dist_runs array of BENCH_stream_recovery.json, gated on
// bitwise parity with the in-process engine.
//
// Env overrides: CCMS_CARS (default 2500), CCMS_DAYS (default 28),
// CCMS_SEED, CCMS_BENCH_OUT (default BENCH_stream.json),
// CCMS_BENCH_RECOVERY_OUT (default BENCH_stream_recovery.json).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "cdr/clean.h"
#include "core/cell_sessions.h"
#include "dist/supervisor.h"
#include "core/connected_time.h"
#include "core/days_histogram.h"
#include "core/presence.h"
#include "faults/flaky_feed.h"
#include "sim/simulator.h"
#include "stream/checkpoint.h"
#include "stream/engine.h"
#include "stream/feed.h"
#include "stream/report.h"

namespace {

using namespace ccms;

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoi(value) : fallback;
}

struct ShardRun {
  int shards = 0;
  double wall_s = 0;
  double records_per_s = 0;
  double speedup = 0;
  bool parity_ok = false;
  double p2_rel_error = 0;
};

struct RecoveryRun {
  int shards = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;  ///< encoded size of the last image
  double checkpoint_wall_s_mean = 0;
  double restore_wall_s = 0;
  std::uint64_t kill_after = 0;         ///< deliveries before the kill
  std::uint64_t resume_position = 0;    ///< feed position of last checkpoint
  std::uint64_t replay_gap = 0;         ///< records re-processed after restore
  std::uint64_t records_replayed = 0;   ///< duplicates absorbed by cursors
  std::uint64_t feed_disconnects = 0;
  bool identical = false;
  std::string why;
};

struct DistRun {
  int workers = 0;
  double wall_s = 0;
  double records_per_s = 0;
  int restarts = 0;
  std::uint64_t kill_after_applied = 0;  ///< fault point (applied records)
  std::uint64_t recovery_gap_records = 0;  ///< gap-log records replayed
  std::uint64_t checkpoint_every = 0;
  bool identical = false;
  std::string why;
};

/// Replays the feed through a dist::DistEngine (one worker process per
/// shard), crashing one worker mid-run so the supervisor restarts it from
/// the last rolling checkpoint and replays the gap — then checks the
/// recovered report is bitwise identical to the in-process engine's.
DistRun run_dist_recovery(const cdr::Dataset& raw, int workers) {
  DistRun run;
  run.workers = workers;

  const stream::StreamConfig stream_config = stream::config_for(raw, workers);
  stream::ShardedEngine reference_engine(stream_config);
  stream::replay(raw, reference_engine);
  const stream::StreamReport reference = reference_engine.snapshot();

  dist::DistConfig config;
  config.stream = stream_config;
  config.checkpoint_every = 4096;
  run.checkpoint_every = config.checkpoint_every;
  // Kill worker 1 after roughly half its share of the feed.
  run.kill_after_applied = raw.size() / (2 * static_cast<unsigned>(workers));
  config.faults[1] = {.crash_after = run.kill_after_applied,
                      .hang_after = 0,
                      .generations = 1};

  const std::vector<cdr::Connection> arrivals = stream::arrival_order(raw);
  dist::DistEngine engine(config);
  const bench::Stopwatch timer;
  engine.push(std::span<const cdr::Connection>(arrivals));
  engine.finish();
  const stream::StreamReport report = engine.snapshot();
  run.wall_s = timer.seconds();
  run.records_per_s =
      run.wall_s > 0 ? static_cast<double>(raw.size()) / run.wall_s : 0;
  run.restarts = engine.restarts_total();
  run.recovery_gap_records = engine.gap_replayed_records();
  run.identical = stream::reports_identical(reference, report, &run.why);
  return run;
}

/// Kills an engine mid-feed (keeping only its last periodic checkpoint and
/// the feed position recorded with it, like a real upstream), restores a
/// fresh engine from the image and replays from that position — then checks
/// the result is bitwise identical to an engine that never died.
RecoveryRun run_recovery(const std::vector<cdr::Connection>& arrivals,
                         const stream::StreamConfig& config,
                         std::uint64_t feed_seed) {
  faults::FlakyFeedConfig feed_config;
  feed_config.disconnect_rate = 0.001;
  feed_config.reorder_rate = 0.02;
  feed_config.max_burst = 6;
  feed_config.lateness_budget = config.allowed_lateness;

  RecoveryRun run;
  run.shards = config.shards;

  // Transport-level ack cadence: disconnects replay from here. Decoupled
  // from the checkpoint cadence, which alone bounds where a *restore* may
  // resume (records acked past the checkpoint die with the process; records
  // checkpointed but re-delivered are absorbed by the cursors).
  constexpr std::size_t kAckInterval = 1024;
  const auto drain = [&](faults::FlakyFeed& feed, stream::ShardedEngine& to) {
    std::size_t since_ack = 0;
    while (!feed.exhausted()) {
      to.push(feed.next());
      if (++since_ack >= kAckInterval) {
        feed.ack();
        since_ack = 0;
      }
    }
  };

  // Reference: the same flaky feed drained by an engine that never dies.
  faults::FlakyFeed reference_feed(arrivals, feed_seed, feed_config);
  stream::ShardedEngine reference_engine(config);
  drain(reference_feed, reference_engine);
  reference_engine.finish();
  const stream::StreamReport reference = reference_engine.snapshot();

  // First life: checkpoint periodically; the feed position at the moment of
  // each checkpoint is the furthest a restore may resume from.
  run.kill_after = arrivals.size() * 3 / 5;
  const std::size_t checkpoint_every =
      std::max<std::size_t>(1, arrivals.size() / 8);
  faults::FlakyFeed first_feed(arrivals, feed_seed, feed_config);
  stream::ShardedEngine first(config);
  stream::Checkpoint saved;
  double checkpoint_wall_total = 0;
  std::size_t since_ack = 0;
  std::size_t since_checkpoint = 0;
  while (!first_feed.exhausted() && first_feed.delivered() < run.kill_after) {
    first.push(first_feed.next());
    if (++since_ack >= kAckInterval) {
      first_feed.ack();
      since_ack = 0;
    }
    if (++since_checkpoint >= checkpoint_every) {
      const bench::Stopwatch timer;
      saved = first.checkpoint();
      checkpoint_wall_total += timer.seconds();
      run.checkpoint_bytes = stream::encode(saved).size();
      ++run.checkpoints_taken;
      run.resume_position = first_feed.position();
      since_checkpoint = 0;
    }
  }
  run.checkpoint_wall_s_mean =
      run.checkpoints_taken > 0
          ? checkpoint_wall_total / static_cast<double>(run.checkpoints_taken)
          : 0;
  // A disconnect just before the kill can leave the cursor rewound behind
  // the checkpoint position, so clamp instead of underflowing.
  run.replay_gap = first_feed.position() > run.resume_position
                       ? first_feed.position() - run.resume_position
                       : 0;

  // Second life: fresh feed (same seed -> same base order) rewound to the
  // last checkpoint's position, fresh engine restored from the image.
  faults::FlakyFeed second_feed(arrivals, feed_seed, feed_config);
  second_feed.rewind_to(run.resume_position);
  stream::ShardedEngine second(config);
  if (run.checkpoints_taken > 0) {
    const bench::Stopwatch timer;
    if (!second.restore(saved)) {
      run.why = "restore() rejected its own checkpoint";
      return run;
    }
    run.restore_wall_s = timer.seconds();
  }
  drain(second_feed, second);
  second.finish();
  run.records_replayed = second.replayed_records();
  run.feed_disconnects = second_feed.disconnects();
  run.identical = stream::reports_identical(reference, second.snapshot(),
                                            &run.why);
  return run;
}

}  // namespace

int main() {
  sim::SimConfig config = sim::SimConfig::paper_default();
  config.fleet.size = env_int("CCMS_CARS", 2500);
  config.study_days = env_int("CCMS_DAYS", 28);
  config.seed = static_cast<std::uint64_t>(env_int("CCMS_SEED", 20170901));

  std::cerr << "[bench] simulating " << config.fleet.size << " cars x "
            << config.study_days << " days (seed " << config.seed << ")...\n";
  const sim::Study study = sim::simulate(config);
  const std::uint64_t records = study.raw.size();

  // Batch-side reference figures for the parity cross-check (the engine's
  // claim is "same numbers as run_study in one streaming pass").
  core::StudyReport batch;
  const cdr::Dataset cleaned = cdr::clean(study.raw, {}, batch.clean);
  batch.presence = core::analyze_presence(cleaned);
  batch.connected_time = core::analyze_connected_time(cleaned, 600);
  batch.days = core::analyze_days_on_network(cleaned);
  batch.cell_sessions = core::analyze_cell_sessions(cleaned, 600);

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "perf_stream: " << records << " records, "
            << config.fleet.size << " cars x " << config.study_days
            << " days, " << cores << " hardware threads\n";
  std::cout << "shards      wall_s    records/s   speedup   parity\n";

  std::vector<ShardRun> runs;
  for (const int shards : {1, 2, 4, 8}) {
    stream::ShardedEngine engine(stream::config_for(study.raw, shards));
    const bench::Stopwatch timer;
    stream::replay(study.raw, engine);
    const stream::StreamReport report = engine.snapshot();
    ShardRun run;
    run.shards = shards;
    run.wall_s = timer.seconds();
    run.records_per_s =
        run.wall_s > 0 ? static_cast<double>(records) / run.wall_s : 0;
    run.speedup = runs.empty() ? 1.0 : runs.front().wall_s / run.wall_s;
    const stream::ParityReport parity = stream::parity_against(report, batch);
    run.parity_ok = parity.pass();
    run.p2_rel_error = parity.p2_median_rel_error;
    runs.push_back(run);
    std::printf("%4d   %11.3f   %10.0f   %7.2fx   %s\n", run.shards,
                run.wall_s, run.records_per_s, run.speedup,
                run.parity_ok ? "ok" : "FAIL");
  }

  bench::JsonArray shard_rows;
  for (const ShardRun& run : runs) {
    // `threads` / `speedup_vs_1t` mirror BENCH_batch.json's row schema so
    // one consumer reads both curves; the historical keys stay alongside.
    shard_rows.push(bench::JsonObject()
                        .add("shards", run.shards)
                        .add("threads", run.shards)
                        .add("wall_s", run.wall_s)
                        .add("records_per_s", run.records_per_s)
                        .add("speedup_vs_1_shard", run.speedup)
                        .add("speedup_vs_1t", run.speedup)
                        .add("parity_ok", run.parity_ok)
                        .add("p2_median_rel_error", run.p2_rel_error)
                        .dump());
  }
  const std::string json =
      bench::JsonObject()
          .add("bench", "perf_stream")
          .add("records", records)
          .add("cars", config.fleet.size)
          .add("study_days", config.study_days)
          .add("seed", static_cast<std::int64_t>(config.seed))
          .add("hardware_concurrency", static_cast<int>(cores))
          .add("peak_rss_bytes", bench::peak_rss_bytes())
          .raw("shard_runs", shard_rows.dump())
          .dump();
  const char* out = std::getenv("CCMS_BENCH_OUT");
  bench::write_bench_json(out != nullptr ? out : "BENCH_stream.json", json);

  // ---- Recovery phase: flaky feed + periodic checkpoints + kill/restore.
  std::cout << "\nrecovery: flaky at-least-once feed, kill at 60%, restore "
               "from last checkpoint\n";
  stream::StreamConfig recovery_config = stream::config_for(study.raw, 4);
  recovery_config.exactly_once = true;
  const RecoveryRun recovery = run_recovery(
      stream::arrival_order(study.raw), recovery_config, config.seed ^ 0xF1AC);
  std::printf(
      "  checkpoints %llu (last %llu bytes, mean %.4fs)  restore %.4fs\n"
      "  replay gap %llu records, %llu duplicates absorbed, %llu disconnects"
      "  ->  %s\n",
      static_cast<unsigned long long>(recovery.checkpoints_taken),
      static_cast<unsigned long long>(recovery.checkpoint_bytes),
      recovery.checkpoint_wall_s_mean, recovery.restore_wall_s,
      static_cast<unsigned long long>(recovery.replay_gap),
      static_cast<unsigned long long>(recovery.records_replayed),
      static_cast<unsigned long long>(recovery.feed_disconnects),
      recovery.identical ? "identical" : "DIVERGED");

  // ---- Distributed recovery phase: worker processes, kill one mid-run.
  std::cout << "\ndistributed recovery: worker processes over sockets, "
               "worker 1 crashed mid-run, restarted from rolling checkpoint\n";
  std::cout << "workers     wall_s    records/s   restarts   gap_records   "
               "parity\n";
  std::vector<DistRun> dist_runs;
  for (const int workers : {2, 4}) {
    const DistRun run = run_dist_recovery(study.raw, workers);
    std::printf("%4d   %11.3f   %10.0f   %8d   %11llu   %s\n", run.workers,
                run.wall_s, run.records_per_s, run.restarts,
                static_cast<unsigned long long>(run.recovery_gap_records),
                run.identical ? "identical" : "DIVERGED");
    dist_runs.push_back(run);
  }

  bench::JsonArray dist_rows;
  for (const DistRun& run : dist_runs) {
    dist_rows.push(bench::JsonObject()
                       .add("workers", run.workers)
                       .add("wall_s", run.wall_s)
                       .add("records_per_s", run.records_per_s)
                       .add("restarts", run.restarts)
                       .add("kill_after_applied", run.kill_after_applied)
                       .add("recovery_gap_records", run.recovery_gap_records)
                       .add("checkpoint_every", run.checkpoint_every)
                       .add("recovery_identical", run.identical)
                       .dump());
  }

  const std::string recovery_json =
      bench::JsonObject()
          .add("bench", "perf_stream_recovery")
          .add("records", records)
          .add("cars", config.fleet.size)
          .add("study_days", config.study_days)
          .add("seed", static_cast<std::int64_t>(config.seed))
          .add("shards", recovery.shards)
          .add("checkpoints_taken", recovery.checkpoints_taken)
          .add("checkpoint_bytes", recovery.checkpoint_bytes)
          .add("checkpoint_wall_s_mean", recovery.checkpoint_wall_s_mean)
          .add("restore_wall_s", recovery.restore_wall_s)
          .add("kill_after_deliveries", recovery.kill_after)
          .add("resume_position", recovery.resume_position)
          .add("replay_gap_records", recovery.replay_gap)
          .add("records_replayed", recovery.records_replayed)
          .add("feed_disconnects", recovery.feed_disconnects)
          .add("recovery_identical", recovery.identical)
          .raw("dist_runs", dist_rows.dump())
          .dump();
  const char* recovery_out = std::getenv("CCMS_BENCH_RECOVERY_OUT");
  bench::write_bench_json(
      recovery_out != nullptr ? recovery_out : "BENCH_stream_recovery.json",
      recovery_json);

  bool ok = true;
  for (const ShardRun& run : runs) {
    if (!run.parity_ok) {
      std::cerr << "[bench] parity FAILED at " << run.shards << " shards\n";
      ok = false;
    }
  }
  if (!recovery.identical) {
    std::cerr << "[bench] recovery parity FAILED: " << recovery.why << "\n";
    ok = false;
  }
  for (const DistRun& run : dist_runs) {
    if (!run.identical) {
      std::cerr << "[bench] distributed recovery parity FAILED at "
                << run.workers << " workers: " << run.why << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
