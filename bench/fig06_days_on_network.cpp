// Figure 6: "Number of days cars were on the network" — histogram over the
// study period; a drop-off below ~10 days and a rise past ~30 days motivate
// the paper's rare/common boundaries.
#include <cstdio>

#include "bench_common.h"
#include "core/days_histogram.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 6: number of days cars were on the network",
      "sharp drop-off under ~10 days; increasing trend past ~30 days");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::DaysOnNetwork result =
      core::analyze_days_on_network(bench.cleaned);

  std::printf("days,car_count\n");
  for (int b = 0; b < result.histogram.bin_count(); ++b) {
    std::printf("%d,%.0f\n", b, result.histogram.count(b));
  }

  // Render in 5-day buckets for readability.
  std::vector<double> buckets;
  std::vector<std::string> labels;
  for (int b = 0; b < result.histogram.bin_count(); b += 5) {
    double total = 0;
    for (int k = b; k < b + 5 && k < result.histogram.bin_count(); ++k) {
      total += result.histogram.count(k);
    }
    buckets.push_back(total);
    labels.push_back(std::to_string(b / 10 % 10));
  }
  std::printf("\ncars per 5-day bucket:\n%s",
              util::render_histogram(buckets, labels).c_str());

  std::printf("\ncars with records: %zu\n", result.days_per_car.size());
  std::printf("detected drop-off knee: %d days (paper eyeballs ~10)\n",
              result.knee_days);
  std::size_t rare10 = 0, rare30 = 0;
  for (const int d : result.days_per_car) {
    rare10 += d <= 10;
    rare30 += d <= 30;
  }
  std::printf("cars <=10 days: %.1f%% (paper: 2.2%%)\n",
              100.0 * static_cast<double>(rare10) / result.days_per_car.size());
  std::printf("cars <=30 days: %.1f%% (paper: 9.9%%)\n",
              100.0 * static_cast<double>(rare30) / result.days_per_car.size());
  return 0;
}
