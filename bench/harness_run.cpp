// harness_run: the scenario-pack driver of the invariants harness.
//
// Runs the shipped scenarios (or one, via --scenario) across a seed list,
// prints a per-run table, writes harness_summary.json and — on any
// violation — a flight-recorder replay bundle that harness_replay re-runs
// to the same failure. Exit status: 0 iff every check passed.
//
//   harness_run [--list]
//               [--scenario NAME]           run one scenario (default: pack)
//               [--pack core|dist|all]      which pack (default core; dist =
//                                           supervised worker processes)
//               [--seeds N]                 seeds base..base+N-1 (default 3)
//               [--out PATH]                summary path
//                                           (default harness_summary.json)
//               [--bundle-dir DIR]          where a violation bundle goes
//                                           (default harness_replay_bundle)
//               [--sabotage]                plant a silent mid-feed drop —
//                                           the negative test: conservation
//                                           must fail and produce a bundle
//
// Env overrides: CCMS_CARS / CCMS_DAYS scale every scenario's workload,
// CCMS_SEED sets the base seed (default 20170901).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "harness/replay.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

using namespace ccms;

void list_scenarios() {
  std::printf("shipped scenarios (--pack core):\n");
  for (const harness::Scenario& s : harness::named_scenarios()) {
    std::printf("  %-26s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::printf("\ndistributed scenarios (--pack dist):\n");
  for (const harness::Scenario& s : harness::dist_scenarios()) {
    std::printf("  %-26s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::printf("\ninvariant registry:\n");
  for (const harness::InvariantInfo& info : harness::invariant_registry()) {
    std::printf("  %-26.*s %.*s\n", static_cast<int>(info.name.size()),
                info.name.data(), static_cast<int>(info.description.size()),
                info.description.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string only_scenario;
  std::string pack = "core";
  std::string out_path = "harness_summary.json";
  std::string bundle_dir = "harness_replay_bundle";
  int seed_count = 3;
  bool sabotage = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list_scenarios();
      return 0;
    } else if (arg == "--scenario") {
      only_scenario = value();
    } else if (arg == "--pack") {
      pack = value();
      if (pack != "core" && pack != "dist" && pack != "all") {
        std::fprintf(stderr, "unknown pack '%s' (core|dist|all)\n",
                     pack.c_str());
        return 2;
      }
    } else if (arg == "--seeds") {
      seed_count = std::atoi(value());
      if (seed_count < 1) seed_count = 1;
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--bundle-dir") {
      bundle_dir = value();
    } else if (arg == "--sabotage") {
      sabotage = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --list)\n", arg.c_str());
      return 2;
    }
  }

  std::vector<harness::Scenario> scenarios;
  if (only_scenario.empty()) {
    if (pack == "core" || pack == "all") {
      const auto& core = harness::named_scenarios();
      scenarios.insert(scenarios.end(), core.begin(), core.end());
    }
    if (pack == "dist" || pack == "all") {
      const auto& dist = harness::dist_scenarios();
      scenarios.insert(scenarios.end(), dist.begin(), dist.end());
    }
  } else {
    const harness::Scenario* found = harness::find_scenario(only_scenario);
    if (found == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   only_scenario.c_str());
      return 2;
    }
    scenarios.push_back(*found);
  }

  // Env scale knobs apply to every scenario's workload uniformly.
  const int cars = bench::env_int("CCMS_CARS", 0);
  const int days = bench::env_int("CCMS_DAYS", 0);
  for (harness::Scenario& s : scenarios) {
    if (cars > 0) s.workload.cars = static_cast<std::uint32_t>(cars);
    if (days > 0) s.workload.days = days;
    if (sabotage) s.faults.sabotage_drop = true;
  }

  const auto base_seed =
      static_cast<std::uint64_t>(bench::env_int("CCMS_SEED", 20170901));
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < seed_count; ++i) {
    seeds.push_back(base_seed + static_cast<std::uint64_t>(i));
  }

  std::printf("invariants harness: %zu scenario(s) x %zu seed(s)%s\n\n",
              scenarios.size(), seeds.size(),
              sabotage ? "  [SABOTAGE: planted silent drop]" : "");
  std::printf("  %-26s %-12s %9s %9s %7s %5s  %s\n", "scenario", "seed",
              "records", "delivers", "checks", "fail", "verdict");

  harness::HarnessSummary summary;
  bool bundle_written = false;
  for (const harness::Scenario& scenario : scenarios) {
    for (const std::uint64_t seed : seeds) {
      harness::ScenarioResult result = harness::run_scenario(scenario, seed);
      std::printf("  %-26s %-12llu %9llu %9llu %7zu %5zu  %s\n",
                  result.scenario.c_str(),
                  static_cast<unsigned long long>(result.seed),
                  static_cast<unsigned long long>(result.records),
                  static_cast<unsigned long long>(result.stream_deliveries),
                  result.checks.size(), result.failures(),
                  result.pass() ? "ok" : "VIOLATION");
      if (!result.pass()) {
        const harness::CheckResult* f = result.first_failure();
        std::printf("      first violation: %s @ %s: %s\n",
                    f->invariant.c_str(), f->stage.c_str(),
                    f->detail.c_str());
        if (!bundle_written) {
          const std::string written =
              harness::write_bundle(bundle_dir, scenario, result);
          std::fprintf(stderr, "[harness] replay bundle: %s\n",
                       written.c_str());
          bundle_written = true;
        }
      }
      summary.results.push_back(std::move(result));
    }
  }

  bench::write_bench_json(out_path, harness::summary_json(summary));
  std::printf("\n  %zu checks, %zu failure(s) -> %s\n",
              summary.total_checks(), summary.total_failures(),
              summary.pass() ? "PASS" : "FAIL");
  return summary.pass() ? 0 : 1;
}
