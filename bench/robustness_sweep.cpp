// Robustness sweep: corruption rate 0 -> 10% vs headline metrics.
//
// Simulates a quirk-free study, exports it as canonical CSV, then injects
// an even mix of every fault class at increasing rates and re-runs the
// pipeline through lenient ingest + S3 cleaning. The headline metrics
// (Fig 3 connected-time median, Fig 7 busy-cell share, Table 2
// segmentation) must drift smoothly with the corruption rate — a cliff
// would mean some stage aborts or silently mis-counts under damage.
//
// Every point also feeds the lenient-ingest survivors through a sharded
// streaming engine: at each corruption rate the stream's inline clean screen
// must drop exactly what batch cdr::clean drops, quarantine nothing as late
// (arrival-order replay), and reproduce the batch connected-time median
// bit-for-bit — corruption upstream must never open a batch/stream gap.
//
// Env overrides: CCMS_CARS (default 800), CCMS_DAYS (42), CCMS_SEED.
// Artifact: BENCH_robustness.json (env CCMS_BENCH_OUT), one `rate_runs` row
// per corruption rate plus the two gate verdicts — see bench/BENCH_SCHEMA.md.
#include <cstdio>

#include "bench_common.h"
#include "bench_json.h"
#include "cdr/io.h"
#include "core/busy_time.h"
#include "core/connected_time.h"
#include "core/days_histogram.h"
#include "core/segmentation.h"
#include "faults/fault_injector.h"
#include "stream/engine.h"
#include "stream/feed.h"
#include "stream/report.h"

namespace {

using namespace ccms;

struct SweepPoint {
  double rate = 0;
  cdr::IngestReport ingest;
  cdr::CleanReport clean;
  double ct_median = 0;
  double busy_over_half = 0;
  double rare_b_total = 0;
  std::size_t stream_clean_drop = 0;
  std::uint64_t stream_late = 0;
  double stream_ct_median = 0;
  bool stream_parity = false;
};

SweepPoint run_point(const std::string& csv, double rate, std::uint64_t seed,
                     const cdr::IngestOptions& options,
                     const faults::FaultEnv& env, const core::CellLoad& load) {
  SweepPoint point;
  point.rate = rate;

  faults::FaultInjector injector(seed, env);
  const auto corrupted =
      injector.corrupt_csv(csv, faults::CsvFaultRates::uniform(rate));

  const cdr::Dataset raw =
      cdr::read_csv_text(corrupted.text, options, point.ingest);
  const cdr::Dataset cleaned = cdr::clean(raw, {}, point.clean);

  const core::ConnectedTime ct = core::analyze_connected_time(cleaned);
  point.ct_median = ct.full.median();
  const core::BusyTime busy = core::analyze_busy_time(cleaned, load, 0.80);
  point.busy_over_half = busy.fraction_over_half;
  const core::DaysOnNetwork days = core::analyze_days_on_network(cleaned);
  const core::Segmentation seg = core::segment_cars(days, busy, {});
  point.rare_b_total = seg.rare_b.total();

  // Stream column: the same lenient-ingest survivors through a sharded
  // engine. The inline clean screen must agree with batch cdr::clean drop
  // for drop, the arrival-order replay must quarantine nothing as late, and
  // the Fig 3 median must match the batch run exactly.
  stream::ShardedEngine engine(stream::config_for(raw, 2));
  stream::replay(raw, engine);
  const stream::StreamReport streamed = engine.snapshot();
  point.stream_clean_drop = streamed.clean.total_removed();
  point.stream_late = engine.late_records();
  point.stream_ct_median = streamed.connected_time.full.median();
  point.stream_parity = point.stream_clean_drop == point.clean.total_removed()
                        && point.stream_late == 0
                        && point.stream_ct_median == point.ct_median;
  return point;
}

double drift_pct(double value, double baseline) {
  if (baseline == 0) return 0;
  return (value / baseline - 1.0) * 100.0;
}

}  // namespace

int main() {
  using ccms::bench::env_int;

  sim::SimConfig config = sim::SimConfig::pristine();
  config.fleet.size = env_int("CCMS_CARS", 800);
  config.study_days = env_int("CCMS_DAYS", 42);
  config.seed = static_cast<std::uint64_t>(env_int("CCMS_SEED", 20170901));

  ccms::bench::print_header(
      "Robustness sweep: corruption rate vs headline metrics",
      "S3 survives dirty telemetry; metrics must degrade smoothly, not cliff");

  std::fprintf(stderr, "[bench] simulating %u cars x %d days (seed %llu)...\n",
               config.fleet.size, config.study_days,
               static_cast<unsigned long long>(config.seed));
  const sim::Study study = sim::simulate(config);
  const core::CellLoad load = core::CellLoad::from_background(study.background);
  const std::string csv = cdr::write_csv_text(study.raw);

  faults::FaultEnv env;
  env.horizon_s = static_cast<std::int64_t>(config.study_days) * 86400;
  env.cell_universe =
      static_cast<std::uint32_t>(study.topology.cells().size());

  cdr::IngestOptions options;
  options.mode = cdr::ParseMode::kLenient;
  options.horizon_s = env.horizon_s;
  options.cell_universe = env.cell_universe;
  options.max_duration_s = 7 * 86400;

  static constexpr double kRates[] = {0.0,  0.001, 0.005, 0.01,
                                      0.02, 0.05,  0.10};

  std::vector<SweepPoint> points;
  std::vector<double> point_wall_s;
  for (const double rate : kRates) {
    const ccms::bench::Stopwatch watch;
    points.push_back(
        run_point(csv, rate, config.seed ^ 0xFA017, options, env, load));
    point_wall_s.push_back(watch.seconds());
  }
  const SweepPoint& base = points.front();

  std::printf(
      "  rate    ingest-drop  ingest-rep  clean-drop   ct-median  drift%%  "
      "busy>50%%   rare30%%  s-drop      s-late  stream\n");
  for (const SweepPoint& p : points) {
    std::printf(
        "  %5.1f%%   %10llu  %10llu  %10zu   %9.5f  %+6.2f  %8.4f  %8.4f  "
        "%6zu  %10llu  %s\n",
        p.rate * 100.0,
        static_cast<unsigned long long>(p.ingest.records_dropped),
        static_cast<unsigned long long>(p.ingest.records_repaired),
        p.clean.total_removed(), p.ct_median,
        drift_pct(p.ct_median, base.ct_median), p.busy_over_half,
        p.rare_b_total, p.stream_clean_drop,
        static_cast<unsigned long long>(p.stream_late),
        p.stream_parity ? "ok" : "FAIL");
  }

  // The acceptance gates: 1% corruption moves the Fig 3 connected-time
  // median by less than 2% relative to the clean run, and the stream column
  // stays identical to batch at every corruption rate.
  double drift_at_1pct = 0;
  bool stream_ok = true;
  for (const SweepPoint& p : points) {
    if (p.rate == 0.01) drift_at_1pct = drift_pct(p.ct_median, base.ct_median);
    stream_ok = stream_ok && p.stream_parity;
  }
  const bool drift_ok = drift_at_1pct > -2.0 && drift_at_1pct < 2.0;
  std::printf("\n  fig-3 connected-time median drift at 1%% corruption: "
              "%+.3f%%  [gate: |drift| < 2%%] -> %s\n",
              drift_at_1pct, drift_ok ? "PASS" : "FAIL");
  std::printf("  batch/stream parity at every corruption rate -> %s\n",
              stream_ok ? "PASS" : "FAIL");

  // Machine-readable artifact alongside the table (BENCH_SCHEMA.md).
  {
    using ccms::bench::JsonArray;
    using ccms::bench::JsonObject;
    JsonArray rows;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      rows.push(JsonObject{}
                    .add("rate", p.rate)
                    .add("wall_s", point_wall_s[i])
                    .add("ingest_dropped", p.ingest.records_dropped)
                    .add("ingest_repaired", p.ingest.records_repaired)
                    .add("clean_removed", p.clean.total_removed())
                    .add("ct_median", p.ct_median)
                    .add("ct_median_drift_pct",
                         drift_pct(p.ct_median, base.ct_median))
                    .add("busy_over_half", p.busy_over_half)
                    .add("rare_b_total", p.rare_b_total)
                    .add("stream_clean_removed", p.stream_clean_drop)
                    .add("stream_late", p.stream_late)
                    .add("stream_ct_median", p.stream_ct_median)
                    .add("stream_parity_ok", p.stream_parity)
                    .dump());
    }
    const std::string json =
        JsonObject{}
            .add("bench", "robustness_sweep")
            .add("records", study.raw.size())
            .add("cars", static_cast<int>(config.fleet.size))
            .add("study_days", config.study_days)
            .add("seed", config.seed)
            .add("peak_rss_bytes", ccms::bench::peak_rss_bytes())
            .add("ct_median_drift_at_1pct", drift_at_1pct)
            .add("drift_gate_ok", drift_ok)
            .add("stream_parity_gate_ok", stream_ok)
            .add("pass", drift_ok && stream_ok)
            .raw("rate_runs", rows.dump())
            .dump();
    const char* out = std::getenv("CCMS_BENCH_OUT");
    ccms::bench::write_bench_json(
        out != nullptr ? out : "BENCH_robustness.json", json);
  }
  return drift_ok && stream_ok ? 0 : 1;
}
