// Figure 4: "Significant time ranges in the week" — the commute-peak,
// network-peak and weekend 24x7 masks the paper encodes (these are
// definitions from known load data, not measurements).
#include <cstdio>

#include "core/usage_matrix.h"
#include "util/ascii_plot.h"

namespace {

void print_mask(const char* title, const ccms::core::Matrix24x7& mask) {
  std::printf("\n%s\n", title);
  std::vector<double> values(mask.values.begin(), mask.values.end());
  std::printf("%s", ccms::util::render_matrix24x7(values).c_str());
}

}  // namespace

int main() {
  using namespace ccms;
  std::printf(
      "==================================================\n"
      "Figure 4: significant time ranges in the week\n"
      "paper: commute peaks Mon-Fri 7-9 & 16-18; network peak 14-24 daily;\n"
      "       weekend daytime block\n"
      "==================================================\n");

  print_mask("Commute peak times", core::commute_peak_mask());
  print_mask("Network peak times", core::network_peak_mask());
  print_mask("Weekend times", core::weekend_mask());

  // Mask sizes as a sanity row.
  std::printf("\nmask,hours_per_week\ncommute,%.0f\nnetwork_peak,%.0f\n"
              "weekend,%.0f\n",
              core::commute_peak_mask().sum(), core::network_peak_mask().sum(),
              core::weekend_mask().sum());
  return 0;
}
