// Extension bench (the paper's motivating problem, §1): simulate a whole
// FOTA campaign against the fleet's actual connectivity windows and compare
// delivery strategies.
//
// The punchline quantifies the paper's Fig 3 warning: cars connect so
// briefly - and almost never overnight - that a "polite" off-peak-only
// campaign barely progresses, while an unrestricted campaign dumps most of
// its bytes into the network's busiest hours. The managed strategy (only
// busy-hour cars restricted) keeps completion fast at a fraction of the
// peak-hour impact.
#include <cstdio>

#include "bench_common.h"
#include "core/busy_time.h"
#include "fota/campaign.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Extension: connectivity-driven FOTA campaign simulation",
      "cars' short sessions make delivery windows scarce (S1, Fig 3); "
      "strategies trade completion speed vs peak-hour impact");

  const bench::BenchStudy bench = bench::make_bench_study();
  const fota::CampaignSimulator simulator(bench.cleaned, bench.load,
                                          bench.study.topology.cells());

  fota::CampaignConfig config;
  config.update_mb = 3000;  // a 3 GB image ("Megabytes to even Gigabytes")
  config.download_share = 0.2;  // polite background throttling
  config.start_day = std::max(0, bench.cleaned.study_days() - 30);
  config.max_days = 30;

  // Strategy 1: unrestricted — deliver whenever a car is connected.
  const auto unrestricted =
      simulator.uniform_assignment(fota::all_day());

  // Strategy 2: off-peak only — never during the 14-24h network peak.
  const auto polite = simulator.uniform_assignment(fota::off_peak_only());

  // Strategy 3: managed — only busy-hour cars are restricted to off-peak.
  const core::BusyTime busy = core::analyze_busy_time(bench.cleaned, bench.load);
  std::vector<fota::CarAssignment> managed;
  for (const core::CarBusyShare& entry : busy.per_car) {
    managed.push_back({entry.car, entry.share > 0.35 ? fota::off_peak_only()
                                                     : fota::all_day()});
  }

  const struct {
    const char* name;
    const std::vector<fota::CarAssignment>* assignments;
  } strategies[] = {
      {"unrestricted", &unrestricted},
      {"off-peak-only", &polite},
      {"managed (busy cars off-peak)", &managed},
  };

  std::printf(
      "\n%-30s %9s %9s %12s %11s %11s %11s\n", "strategy", "completed",
      "never", "median days", "p90 days", "peak MB", "offpeak MB");
  for (const auto& strategy : strategies) {
    const fota::CampaignOutcome outcome =
        simulator.run(*strategy.assignments, config);
    std::printf("%-30s %8.1f%% %8.1f%% %12.1f %11.1f %11.0f %11.0f\n",
                strategy.name, outcome.completion_rate() * 100,
                100.0 * static_cast<double>(outcome.never_connected) /
                    static_cast<double>(outcome.total_cars),
                outcome.days_to_complete.quantile(0.5),
                outcome.days_to_complete.quantile(0.9), outcome.peak_mb,
                outcome.offpeak_mb);
  }

  // Completion curve of the managed strategy.
  const fota::CampaignOutcome outcome = simulator.run(managed, config);
  std::printf("\nmanaged strategy completions per campaign day:\nday,cars\n");
  int cumulative = 0;
  for (std::size_t k = 0; k < outcome.completions_per_day.size(); ++k) {
    cumulative += outcome.completions_per_day[k];
    std::printf("%zu,%d\n", k, cumulative);
  }
  return 0;
}
