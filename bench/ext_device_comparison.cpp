// Extension bench (§4.7 "Discussion"): put cars, smartphones and static IoT
// meters side by side on the same network and measure the three-way
// comparison the paper argues qualitatively:
//   - like smartphones: weekly/diurnal pattern, predictability;
//   - like IoT: short time on network overall and per session, subset of
//     cells;
//   - unlike either: high mobility, and (per the cited LANMAN'16 result)
//     several-fold the signaling intensity of regular LTE devices.
#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "bench_common.h"
#include "cdr/session.h"
#include "core/cell_sessions.h"
#include "core/connected_time.h"
#include "core/signaling.h"
#include "fleet/reference_devices.h"

namespace {

using namespace ccms;

struct ClassMetrics {
  const char* name;
  std::size_t devices = 0;
  std::size_t records = 0;
  double connected_pct = 0;       // mean % of study connected
  double sessions_per_day = 0;    // 30 s sessions per device-day
  double median_session_s = 0;    // per-cell connection duration
  double median_cells = 0;        // distinct cells per device
  double mobility = 0;            // distinct stations per 10-min journey (mean)
  int peak_hour = 0;              // hour of day with most connections
  double signaling_per_hour = 0;  // events per connected hour
};

ClassMetrics measure(const char* name, const cdr::Dataset& dataset,
                     const net::CellTable& cells) {
  ClassMetrics m;
  m.name = name;
  m.records = dataset.size();

  const auto ct = core::analyze_connected_time(dataset);
  m.connected_pct = ct.mean_full * 100;
  const auto cs = core::analyze_cell_sessions(dataset);
  m.median_session_s = cs.median;

  std::vector<double> cells_per_device;
  std::uint64_t sessions = 0;
  double device_days = 0;
  double journeys = 0;
  double stations_total = 0;
  std::array<std::uint64_t, 24> by_hour{};
  const int days = std::max(1, dataset.study_days());
  std::vector<char> present(static_cast<std::size_t>(days));

  dataset.for_each_car([&](CarId, std::span<const cdr::Connection> conns) {
    ++m.devices;
    sessions += cdr::aggregate_sessions(conns, cdr::kSessionGap).size();

    std::unordered_set<std::uint32_t> distinct;
    std::fill(present.begin(), present.end(), 0);
    for (const cdr::Connection& c : conns) {
      distinct.insert(c.cell.value);
      const auto d = std::clamp<std::int64_t>(time::day_index(c.start), 0,
                                              days - 1);
      present[static_cast<std::size_t>(d)] = 1;
      ++by_hour[static_cast<std::size_t>(time::hour_of_day(c.start))];
    }
    cells_per_device.push_back(static_cast<double>(distinct.size()));
    for (const char p : present) device_days += p;

    for (const auto& journey :
         cdr::aggregate_sessions(conns, cdr::kJourneyGap)) {
      std::unordered_set<std::uint32_t> stations;
      for (const auto& leg : journey.legs) {
        stations.insert(cells.info(leg.cell).station.value);
      }
      stations_total += static_cast<double>(stations.size());
      ++journeys;
    }
  });

  m.sessions_per_day =
      device_days > 0 ? static_cast<double>(sessions) / device_days : 0;
  m.median_cells =
      stats::EmpiricalDistribution(std::move(cells_per_device)).median();
  m.mobility = journeys > 0 ? stations_total / journeys : 0;
  m.peak_hour = static_cast<int>(
      std::max_element(by_hour.begin(), by_hour.end()) - by_hour.begin());
  m.signaling_per_hour =
      core::analyze_signaling(dataset, cells).events_per_connected_hour();
  return m;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: cars vs smartphones vs static IoT on one network (S4.7)",
      "cars: short sessions like IoT, diurnal like phones, mobility like "
      "neither; signaling several-fold a phone's (LANMAN'16: 4-7x)");

  const bench::BenchStudy bench = bench::make_bench_study();
  const net::CellTable& cells = bench.study.topology.cells();
  const int days = bench.cleaned.study_days();

  util::Rng rng(777);
  fleet::SmartphoneConfig phone_config;
  phone_config.count = 400;
  phone_config.study_days = days;
  cdr::Dataset phones;
  phones.set_study_days(days);
  for (const auto& c :
       fleet::generate_smartphones(bench.study.topology, phone_config, rng)) {
    phones.add(c);
  }
  phones.finalize();

  fleet::IotMeterConfig iot_config;
  iot_config.count = 400;
  iot_config.study_days = days;
  cdr::Dataset meters;
  meters.set_study_days(days);
  for (const auto& c :
       fleet::generate_iot_meters(bench.study.topology, iot_config, rng)) {
    meters.add(c);
  }
  meters.finalize();

  const ClassMetrics rows[3] = {
      measure("connected car", bench.cleaned, cells),
      measure("smartphone", phones, cells),
      measure("static IoT meter", meters, cells),
  };

  std::printf("\n%-18s %8s %10s %10s %11s %9s %9s %9s %6s %11s\n", "class",
              "devices", "records", "conn %", "sess/day", "med sess",
              "med cells", "sta/jrny", "peak", "signal/h");
  for (const ClassMetrics& m : rows) {
    std::printf("%-18s %8zu %10zu %9.1f%% %11.1f %8.0f s %9.0f %9.1f %5d:00 %11.0f\n",
                m.name, m.devices, m.records, m.connected_pct,
                m.sessions_per_day, m.median_session_s, m.median_cells,
                m.mobility, m.peak_hour, m.signaling_per_hour);
  }

  std::printf("\nsignaling intensity ratio car/smartphone: %.1fx "
              "(paper's cited range: 4-7x)\n",
              rows[0].signaling_per_hour /
                  std::max(1e-9, rows[1].signaling_per_hour));
  std::printf("car mobility vs smartphone: %.1fx stations per journey; vs "
              "IoT: %.1fx\n",
              rows[0].mobility / std::max(1e-9, rows[1].mobility),
              rows[0].mobility / std::max(1e-9, rows[2].mobility));
  return 0;
}
