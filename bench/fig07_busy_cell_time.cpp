// Figure 7: "Network conditions that cars encounter" — distribution of the
// percentage of connected time each car spends in busy cells (avg U_PRB >
// 80% for the 15-minute bin), plus the >=50% conditional view of Fig 7b.
#include <cstdio>

#include "bench_common.h"
#include "core/busy_time.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 7: % of connected time spent in busy cells",
      "most cars low; ~2.4% above 50%; ~1% spend all their time on busy "
      "radios");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::BusyTime busy = core::analyze_busy_time(bench.cleaned, bench.load);

  // Fig 7a: proportion of cars per decile of busy-time share.
  std::vector<double> decile_counts(10, 0.0);
  for (const core::CarBusyShare& e : busy.per_car) {
    int bucket = static_cast<int>(e.share * 10);
    if (bucket > 9) bucket = 9;
    decile_counts[static_cast<std::size_t>(bucket)] += 1.0;
  }
  const double n = static_cast<double>(busy.per_car.size());
  std::printf("busy_share_bucket,proportion_of_cars\n");
  for (int b = 0; b < 10; ++b) {
    std::printf("%d0%%-%d0%%,%.4f\n", b, b + 1,
                decile_counts[static_cast<std::size_t>(b)] / n);
  }
  std::vector<std::string> labels;
  for (int b = 0; b < 10; ++b) labels.push_back(std::to_string(b));
  std::printf("\n(a) proportion of cars per 10%%-bucket of busy time:\n%s",
              util::render_histogram(decile_counts, labels).c_str());

  // Fig 7b: conditional on >= 50%.
  std::vector<double> upper_counts(5, 0.0);
  for (const core::CarBusyShare& e : busy.per_car) {
    if (e.share < 0.5) continue;
    int bucket = static_cast<int>((e.share - 0.5) * 10);
    if (bucket > 4) bucket = 4;
    upper_counts[static_cast<std::size_t>(bucket)] += 1.0;
  }
  std::printf("\n(b) cars with >=50%% busy time, per bucket 50..100%%:\n%s",
              util::render_histogram(upper_counts, labels).c_str());

  core::print_busy_time(std::cout, busy);
  return 0;
}
