// Extension bench (paper §4.7 future work): cluster the fleet by behaviour
// predictability. "Cars can be clustered according to predictability in
// their behavior. This indicates a potential for intelligent capacity and
// network management." The paper motivates this clustering; here it runs.
#include <cstdio>

#include "bench_common.h"
#include "core/predictability.h"
#include "fleet/archetype.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Extension: predictability clustering of the fleet (S4.7)",
      "distinct car classes by regularity / presence / period-of-day usage");

  const bench::BenchStudy bench = bench::make_bench_study();
  const auto features = core::extract_behavior(bench.cleaned);
  const auto clusters = core::cluster_behavior(features, 4);

  std::printf("cluster,cars,regularity,days_frac,commute_frac,peak_frac,"
              "weekend_frac\n");
  for (std::size_t c = 0; c < clusters.clusters.size(); ++c) {
    const auto& cluster = clusters.clusters[c];
    std::printf("%zu,%zu,%.2f,%.2f,%.2f,%.2f,%.2f\n", c + 1, cluster.size,
                cluster.centroid.regularity, cluster.centroid.days_fraction,
                cluster.centroid.commute_fraction,
                cluster.centroid.peak_fraction,
                cluster.centroid.weekend_fraction);
  }

  // Validation against the (hidden-to-the-analysis) generative archetypes:
  // how concentrated is each behaviour cluster in archetype space?
  std::printf("\ncluster x archetype composition (%%):\n%-10s",
              "cluster");
  for (const auto& spec : fleet::archetype_catalogue()) {
    std::printf(" %18s", spec.name);
  }
  std::printf("\n");
  std::vector<std::array<std::size_t, fleet::kArchetypeCount>> comp(
      clusters.clusters.size());
  for (std::size_t i = 0; i < clusters.features.size(); ++i) {
    const CarId car = clusters.features[i].car;
    const auto archetype = static_cast<std::size_t>(
        bench.study.fleet[car.value].archetype);
    ++comp[static_cast<std::size_t>(clusters.assignment[i])][archetype];
  }
  for (std::size_t c = 0; c < comp.size(); ++c) {
    std::printf("%-10zu", c + 1);
    std::size_t total = 0;
    for (const auto n : comp[c]) total += n;
    for (const auto n : comp[c]) {
      std::printf(" %17.1f%%",
                  total > 0 ? 100.0 * static_cast<double>(n) / total : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\n(a FOTA scheduler can pre-position updates for cluster 1's "
              "predictable windows and fall back to opportunistic delivery "
              "for the erratic clusters)\n");
  return 0;
}
