// Figure 3: "Cars' total time on the network is very short." — CDF of each
// car's total connected time as a percentage of the study period, full vs
// truncated-to-600 s durations.
#include <cstdio>

#include "bench_common.h"
#include "core/connected_time.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 3: total connected time as % of the study period",
      "means ~8% full / ~4% truncated; p99.5 ~27% / ~15%");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::ConnectedTime ct = core::analyze_connected_time(bench.cleaned);

  std::printf("pct_of_study,cdf_full,cdf_truncated\n");
  for (int i = 0; i <= 60; ++i) {
    const double x = 0.30 * i / 60;  // 0..30% of the study, Fig 3's axis
    std::printf("%.3f,%.4f,%.4f\n", x, ct.full.cdf(x), ct.truncated.cdf(x));
  }

  std::vector<util::Series> series(2);
  series[0].glyph = 'f';
  series[0].name = "reported connection length";
  series[1].glyph = 't';
  series[1].name = "truncated to 600 s";
  for (int i = 0; i <= 60; ++i) {
    const double x = 0.30 * i / 60;
    series[0].points.push_back({x * 100, ct.full.cdf(x)});
    series[1].points.push_back({x * 100, ct.truncated.cdf(x)});
  }
  util::PlotOptions options;
  options.y_min = 0;
  options.y_max = 1;
  options.x_label = "percentage of study time";
  options.y_label = "cumulative distribution";
  std::printf("\n%s\n", util::render_lines(series, options).c_str());

  core::print_connected_time(std::cout, ct);
  return 0;
}
