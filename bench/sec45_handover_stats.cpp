// Section 4.5: "Spatial behavior" — handover counts within sessions whose
// longest connection gap is 10 minutes: median 2, p70 4, p90 9; the
// dominant type is inter-station; technology/carrier/sector handovers are
// negligible.
#include <cstdio>

#include "bench_common.h"
#include "core/handover.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Section 4.5: handovers within 10-minute-gap sessions",
      "median 2 / p70 4 / p90 9; inter-station dominates; most downloads "
      "span 3-10 base stations");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::HandoverStats stats =
      core::analyze_handovers(bench.cleaned, bench.study.topology.cells());

  core::print_handovers(std::cout, stats);

  std::printf("\nhandovers_per_session,cdf\n");
  std::vector<util::PlotPoint> points;
  for (int h = 0; h <= 20; ++h) {
    const double p = stats.per_session.cdf(h);
    std::printf("%d,%.4f\n", h, p);
    points.push_back({static_cast<double>(h), p});
  }
  util::PlotOptions options;
  options.y_min = 0;
  options.y_max = 1;
  options.x_label = "handovers per session";
  options.y_label = "cumulative distribution";
  std::printf("\n%s", util::render_line(points, options).c_str());

  std::printf(
      "\ndistinct base stations per session: p50 %.0f, p70 %.0f, p90 %.0f "
      "(paper: impact spans ~3-10 stations)\n",
      stats.stations_per_session.quantile(0.5),
      stats.stations_per_session.quantile(0.7),
      stats.stations_per_session.quantile(0.9));
  return 0;
}
