// Extension bench (§4.7): quantify the car-specific mobility traits —
// "connecting to different cells on different days ... and inherent
// mobility" — across the fleet.
#include <cstdio>

#include "bench_common.h"
#include "core/mobility.h"
#include "fleet/archetype.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Extension: per-car mobility profile (S4.7)",
      "cars touch different cells on different days, unlike phones/IoT; "
      "breadth and novelty vary by behaviour class");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::MobilityStats stats =
      core::analyze_mobility(bench.cleaned, bench.study.topology.cells());

  std::printf("metric,p10,p50,p90\n");
  std::printf("stations_per_active_day,%.1f,%.1f,%.1f\n",
              stats.stations_per_day.quantile(0.1),
              stats.stations_per_day.quantile(0.5),
              stats.stations_per_day.quantile(0.9));
  std::printf("daily_cell_novelty,%.2f,%.2f,%.2f\n",
              stats.novelty.quantile(0.1), stats.novelty.quantile(0.5),
              stats.novelty.quantile(0.9));
  std::printf("distinct_cells_total,%.0f,%.0f,%.0f\n",
              stats.distinct_cells.quantile(0.1),
              stats.distinct_cells.quantile(0.5),
              stats.distinct_cells.quantile(0.9));

  // Per-archetype means, validating the behavioural spread.
  std::array<double, fleet::kArchetypeCount> stations{};
  std::array<double, fleet::kArchetypeCount> novelty{};
  std::array<int, fleet::kArchetypeCount> counts{};
  for (const core::CarMobility& m : stats.per_car) {
    const auto a = static_cast<std::size_t>(
        bench.study.fleet[m.car.value].archetype);
    stations[a] += m.stations_per_day;
    novelty[a] += m.novelty;
    ++counts[a];
  }
  std::printf("\narchetype,mean_stations_per_day,mean_novelty\n");
  for (int a = 0; a < fleet::kArchetypeCount; ++a) {
    const auto i = static_cast<std::size_t>(a);
    if (counts[i] == 0) continue;
    std::printf("%s,%.1f,%.2f\n",
                fleet::name(static_cast<fleet::Archetype>(a)),
                stations[i] / counts[i], novelty[i] / counts[i]);
  }

  std::printf("\n(a static IoT meter would score 1.0 stations/day and 0.0 "
              "novelty; a phone ~1-2 and ~0 - cars are the mobile class)\n");
  return 0;
}
