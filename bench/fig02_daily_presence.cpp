// Figure 2: "Number of cars that appear on the network is relatively
// consistent over the days throughout the study."
//
// Prints the per-day % of cars and % of cells series with OLS trend lines
// (the paper annotates y = 0.0003x + 0.6448, R^2 = 0.0333 for cells and
// y = 7e-05x + 0.7566, R^2 = 0.001 for cars) and renders both series.
#include <cstdio>

#include "bench_common.h"
#include "core/presence.h"
#include "core/report.h"
#include "util/ascii_plot.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Figure 2: cars and cells on the network per day",
      "weekly dips on weekends; slow upward trend; 3 data-loss days dip");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::DailyPresence presence = core::analyze_presence(bench.cleaned);

  std::printf("day,weekday,pct_cars,pct_cells\n");
  for (std::size_t d = 0; d < presence.cars_fraction.size(); ++d) {
    std::printf("%zu,%s,%.4f,%.4f\n", d,
                time::name(time::weekday(static_cast<time::Seconds>(d) *
                                         time::kSecondsPerDay)),
                presence.cars_fraction[d], presence.cells_fraction[d]);
  }

  std::vector<util::Series> series(2);
  series[0].glyph = 'c';
  series[0].name = "% cars";
  series[1].glyph = 'x';
  series[1].name = "% cells";
  for (std::size_t d = 0; d < presence.cars_fraction.size(); ++d) {
    series[0].points.push_back(
        {static_cast<double>(d), presence.cars_fraction[d]});
    series[1].points.push_back(
        {static_cast<double>(d), presence.cells_fraction[d]});
  }
  util::PlotOptions options;
  options.y_min = 0.4;
  options.y_max = 1.0;
  options.x_label = "day of the study period";
  std::printf("\n%s\n", util::render_lines(series, options).c_str());

  core::print_presence(std::cout, presence);
  return 0;
}
