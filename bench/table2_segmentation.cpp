// Table 2: "Car segmentation" — rare/common (10- and 30-day boundaries)
// crossed with busy/non-busy/both typical connection periods.
#include "bench_common.h"
#include "core/report.h"
#include "core/segmentation.h"

int main() {
  using namespace ccms;
  bench::print_header(
      "Table 2: car segmentation (rare/common x busy/non-busy/both)",
      "rare<=10: 2.2%; rare<=30: 9.9%; busy-typical small; most cars "
      "common+non-busy");

  const bench::BenchStudy bench = bench::make_bench_study();
  const core::DaysOnNetwork days = core::analyze_days_on_network(bench.cleaned);
  const core::BusyTime busy = core::analyze_busy_time(bench.cleaned, bench.load);
  const core::Segmentation seg = core::segment_cars(days, busy);
  core::print_segmentation(std::cout, seg);

  std::cout << "\nNote: our generative model matches Fig 7's busy-time "
               "distribution (most cars low, ~2.4% over half); the paper's "
               "'both' column (37.5%) is inconsistent with its own Fig 7 and "
               "is not reproducible from the stated definitions - see "
               "EXPERIMENTS.md.\n";
  return 0;
}
